"""Schedulable events with deterministic total ordering.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
is assigned by the :class:`~repro.sim.engine.Simulator` at scheduling time,
so two events scheduled for the same instant at the same priority always
fire in scheduling order.  This determinism matters: GC-policy decisions
depend on whether a device-idle notification is observed before or after a
flusher tick at the same timestamp.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple


class EventPriority(enum.IntEnum):
    """Tie-break priority for events scheduled at the same instant.

    Lower values fire first.  ``DEVICE`` completions are delivered before
    ``CONTROL`` ticks (a policy tick at time *t* should see all I/O that
    completed at *t*), and ``LOW`` runs last (bookkeeping, metric samples).
    """

    DEVICE = 0
    NORMAL = 1
    CONTROL = 2
    LOW = 3


@dataclass
class Event:
    """A single scheduled callback.

    Attributes:
        time: absolute simulated time (integer nanoseconds) at which the
            event fires.
        priority: tie-break class, see :class:`EventPriority`.
        seq: scheduling sequence number; assigned by the simulator.
        callback: zero-argument callable invoked when the event fires.
        name: optional label used in error messages and traces.
        cancelled: set via :meth:`cancel`; cancelled events are skipped
            (lazily removed from the heap).
    """

    time: int
    priority: int
    seq: int
    callback: Callable[[], Any]
    name: Optional[str] = None
    cancelled: bool = field(default=False, compare=False)
    #: Set by the scheduling simulator so cancellation can keep its
    #: live-event counter exact without scanning the heap.
    _on_cancel: Optional[Callable[[], None]] = field(
        default=None, compare=False, repr=False
    )

    def sort_key(self) -> Tuple[int, int, int]:
        """The total ordering key used by the event heap."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def cancel(self) -> None:
        """Mark the event so the engine discards it instead of firing it.

        Cancellation is O(1); the heap entry is dropped when it surfaces.
        Idempotent, and a no-op after the event has already fired.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()
            self._on_cancel = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = self.name or getattr(self.callback, "__qualname__", "callback")
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} prio={self.priority} {label}{state}>"
