"""Per-component seeded random streams.

A scenario seeds one :class:`RandomStreams` factory; each component asks it
for a named stream.  Stream seeds are derived from the root seed and the
stream name, so adding a new component (or reordering construction) never
perturbs the random sequence seen by existing components -- a property that
makes A/B policy comparisons noise-free: two runs that differ only in GC
policy replay the *same* workload.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

import numpy as np


class RandomStreams:
    """Factory for named, independently-seeded random generators."""

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)
        self._py_streams: Dict[str, random.Random] = {}
        self._np_streams: Dict[str, np.random.Generator] = {}

    def _derive_seed(self, name: str) -> int:
        """Stable 64-bit seed from (root_seed, name)."""
        digest = hashlib.sha256(f"{self.root_seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little")

    def python(self, name: str) -> random.Random:
        """A ``random.Random`` dedicated to ``name`` (cached per name)."""
        if name not in self._py_streams:
            self._py_streams[name] = random.Random(self._derive_seed(name))
        return self._py_streams[name]

    def numpy(self, name: str) -> np.random.Generator:
        """A numpy ``Generator`` dedicated to ``name`` (cached per name)."""
        if name not in self._np_streams:
            self._np_streams[name] = np.random.default_rng(self._derive_seed(name))
        return self._np_streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of the parent's."""
        return RandomStreams(self._derive_seed(f"fork:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RandomStreams root_seed={self.root_seed}>"
