"""Integer-nanosecond simulated time base.

Every timestamp and duration in the simulator is an ``int`` number of
nanoseconds.  Integer time makes event ordering exact and runs bit-for-bit
reproducible; floating-point seconds would accumulate rounding differences
between platforms and between mathematically equivalent schedules.

The constants below are the only unit conversions the rest of the code
should use::

    sim.schedule(5 * SECOND, callback)
    latency_us = elapsed / MICROSECOND
"""

from __future__ import annotations

#: One nanosecond -- the base tick of the simulation clock.
NANOSECOND: int = 1

#: One microsecond in simulator ticks.
MICROSECOND: int = 1_000

#: One millisecond in simulator ticks.
MILLISECOND: int = 1_000_000

#: One second in simulator ticks.
SECOND: int = 1_000_000_000


def ns_from_seconds(seconds: float) -> int:
    """Convert (possibly fractional) seconds to integer nanoseconds.

    Rounds to the nearest nanosecond; callers that need exact values should
    stick to integer arithmetic on the unit constants instead.
    """
    return int(round(seconds * SECOND))


def seconds_from_ns(ticks: int) -> float:
    """Convert integer nanoseconds to float seconds (for reporting only)."""
    return ticks / SECOND


def format_time(ticks: int) -> str:
    """Render a timestamp with an adaptive unit, e.g. ``'12.500 ms'``.

    Intended for log messages and error strings; never parse the output.
    """
    if ticks < 0:
        return "-" + format_time(-ticks)
    if ticks < MICROSECOND:
        return f"{ticks} ns"
    if ticks < MILLISECOND:
        return f"{ticks / MICROSECOND:.3f} us"
    if ticks < SECOND:
        return f"{ticks / MILLISECOND:.3f} ms"
    return f"{ticks / SECOND:.3f} s"
