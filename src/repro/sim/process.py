"""Generator-based sequential processes.

Closed-loop workload actors are most naturally written as straight-line
code: *issue a write, wait for completion, think, repeat*.  :class:`Process`
lets such code be an ordinary Python generator that ``yield``\\ s commands
to the simulator:

* ``yield Timeout(delay)`` -- sleep for ``delay`` ticks.
* ``yield WaitFor()`` -- park until something calls
  :meth:`Process.wake` (e.g. an I/O-completion callback).  ``wake`` may
  carry a value, which becomes the result of the ``yield``.

Example::

    def actor(sim, device):
        while True:
            waiter = WaitFor()
            device.submit(req, on_complete=waiter.wake)
            yield waiter                 # blocks until completion
            yield Timeout(10 * MILLISECOND)   # think time

    Process(sim, actor(sim, device)).start()
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.sim.engine import Simulator
from repro.sim.events import PRIORITY_NORMAL


class ProcessExit(Exception):
    """Thrown into a generator to terminate it from outside."""


class Timeout:
    """Yield command: sleep for ``delay`` ticks."""

    __slots__ = ("delay",)

    def __init__(self, delay: int) -> None:
        if delay < 0:
            raise ValueError(f"Timeout delay must be >= 0, got {delay}")
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay})"


class WaitFor:
    """Yield command: park the process until :meth:`wake` is called.

    A ``WaitFor`` is single-shot: it connects exactly one ``yield`` to one
    ``wake``.  Waking before the process yields is allowed (the value is
    stored and the yield returns immediately); waking twice is an error.
    """

    __slots__ = ("_process", "_value", "_woken", "_consumed")

    def __init__(self) -> None:
        self._process: Optional["Process"] = None
        self._value: Any = None
        self._woken = False
        self._consumed = False

    @property
    def woken(self) -> bool:
        return self._woken

    def wake(self, value: Any = None) -> None:
        """Resume the waiting process, passing ``value`` to its yield."""
        if self._woken:
            raise RuntimeError("WaitFor.wake() called twice")
        self._woken = True
        self._value = value
        if self._process is not None:
            process = self._process
            self._process = None
            process._resume_soon(self._value)

    def _attach(self, process: "Process") -> bool:
        """Bind to a process; returns True if already woken (no parking)."""
        if self._consumed:
            raise RuntimeError("WaitFor yielded twice")
        self._consumed = True
        if self._woken:
            return True
        self._process = process
        return False


class Process:
    """Drives a generator against a :class:`Simulator`.

    The generator advances inside simulator events, so everything it does
    happens at well-defined simulated instants.
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Any, Any, None],
        *,
        name: Optional[str] = None,
        on_exit: Optional[Callable[["Process"], None]] = None,
    ) -> None:
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._on_exit = on_exit
        self._finished = False
        self._started = False

    @property
    def finished(self) -> bool:
        return self._finished

    def start(self, delay: int = 0) -> "Process":
        """Schedule the first step of the process ``delay`` ticks from now."""
        if self._started:
            raise RuntimeError(f"process {self.name} already started")
        self._started = True
        self.sim.schedule(delay, lambda: self._step(None), name=f"{self.name}.start")
        return self

    def kill(self) -> None:
        """Terminate the generator by throwing :class:`ProcessExit` into it."""
        if self._finished:
            return
        try:
            self._generator.throw(ProcessExit())
        except (ProcessExit, StopIteration):
            pass
        self._finish()

    # ------------------------------------------------------------------
    def _resume_soon(self, value: Any) -> None:
        """Resume at the current instant (still via the event loop)."""
        self.sim.schedule(
            0,
            lambda: self._step(value),
            priority=PRIORITY_NORMAL,
            name=f"{self.name}.resume",
        )

    def _step(self, send_value: Any) -> None:
        if self._finished:
            return
        try:
            command = self._generator.send(send_value)
        except StopIteration:
            self._finish()
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Timeout):
            self.sim.schedule(command.delay, lambda: self._step(None), name=f"{self.name}.timeout")
        elif isinstance(command, WaitFor):
            if command._attach(self):
                # Already woken before we parked: resume with its value now.
                self._resume_soon(command._value)
        else:
            raise TypeError(
                f"process {self.name} yielded {command!r}; expected Timeout or WaitFor"
            )

    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        if self._on_exit is not None:
            self._on_exit(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "finished" if self._finished else ("running" if self._started else "new")
        return f"<Process {self.name} {state}>"
