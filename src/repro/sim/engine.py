"""The simulator event loop.

:class:`Simulator` owns the clock and the event heap.  Components schedule
callbacks with :meth:`Simulator.schedule` (relative delay) or
:meth:`Simulator.schedule_at` (absolute time) and the loop dispatches them
in deterministic ``(time, priority, sequence)`` order.

The loop never advances time past the event being dispatched, so a callback
always observes ``sim.now`` equal to its own firing time.

Hot-path layout (PERFORMANCE.md): the heap holds flat
``(time, priority, seq, event)`` tuples.  ``seq`` is unique per event, so
heap sifting is decided entirely by C-level int comparison -- the
:class:`~repro.sim.events.Event` object rides along and is never compared.
``run`` / ``run_until`` inline the dispatch instead of calling
:meth:`step` per event.
"""

from __future__ import annotations

import heapq
from time import perf_counter_ns
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.events import PRIORITY_NORMAL, Event, EventPriority  # noqa: F401

_heappush = heapq.heappush
_heappop = heapq.heappop

#: Heap entry: ``(time, priority, seq, event)``.
_HeapEntry = Tuple[int, int, int, Event]


class SimulationError(RuntimeError):
    """Raised for scheduling bugs (negative delays, time travel, etc.)."""


class Simulator:
    """Deterministic discrete-event simulator.

    A single instance is shared by every component of a scenario: the NAND
    device, the FTL's background-GC machinery, the host page cache flusher
    and the workload actors all schedule against the same clock.

    Typical use::

        sim = Simulator()
        sim.schedule(5 * SECOND, flusher.wake)
        sim.run_until(3600 * SECOND)
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._heap: List[_HeapEntry] = []
        self._seq: int = 0
        self._live: int = 0
        self._running: bool = False
        self._stopped: bool = False
        self._dead: bool = False
        #: Number of events dispatched so far (monitoring / tests).
        self.dispatched: int = 0
        #: Optional wall-clock profiler (see :meth:`set_profiler`).
        self._profiler = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in integer nanoseconds."""
        return self._now

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    @property
    def profiler(self):
        """The attached :class:`~repro.obs.profiler.LoopProfiler`, if any."""
        return self._profiler

    def set_profiler(self, profiler) -> None:
        """Attach (or with ``None`` detach) a wall-clock loop profiler.

        With a profiler attached every dispatched event is timed with
        ``perf_counter_ns`` and accounted under its event name (or the
        callback's qualified name); with none attached the dispatch loop
        pays only an ``is None`` check.
        """
        self._profiler = profiler

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        callback: Callable[[], Any],
        *,
        priority: int = PRIORITY_NORMAL,
        name: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` ticks from now.

        Returns the :class:`Event`, which the caller may :meth:`~Event.cancel`.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for {name or callback}")
        return self.schedule_at(self._now + delay, callback, priority=priority, name=name)

    def schedule_at(
        self,
        time: int,
        callback: Callable[[], Any],
        *,
        priority: int = PRIORITY_NORMAL,
        name: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if self._dead:
            raise SimulationError("simulator is dead after a power cut")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        seq = self._seq
        event = Event(time, priority, seq, callback, name)
        event._on_cancel = self._on_event_cancelled
        self._seq = seq + 1
        self._live += 1
        _heappush(self._heap, (time, event.priority, seq, event))
        return event

    def _on_event_cancelled(self) -> None:
        self._live -= 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _dispatch(self, time: int, event: Event) -> None:
        """Fire one live event just popped off the heap."""
        event._on_cancel = None  # fired: a late cancel() is a no-op
        self._live -= 1
        self._now = time
        self.dispatched += 1
        profiler = self._profiler
        if profiler is None:
            event.callback()
        else:
            label = event.name or getattr(
                event.callback, "__qualname__", "anonymous"
            )
            start = perf_counter_ns()
            event.callback()
            profiler.record(label, perf_counter_ns() - start)

    def step(self) -> bool:
        """Dispatch the single next pending event.

        Returns ``False`` when the heap is empty (nothing was dispatched).
        """
        heap = self._heap
        while heap:
            time, _prio, _seq, event = _heappop(heap)
            if event.cancelled:
                continue
            self._dispatch(time, event)
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event heap drains (or ``max_events`` dispatched).

        Returns the number of events dispatched by this call.
        """
        self._stopped = False
        count = 0
        heap = self._heap
        while not self._stopped and heap:
            if max_events is not None and count >= max_events:
                break
            time, _prio, _seq, event = _heappop(heap)
            if event.cancelled:
                continue
            self._dispatch(time, event)
            count += 1
        return count

    def run_until(self, time: int, max_events: Optional[int] = None) -> int:
        """Run events with timestamps ``<= time``, then set the clock to it.

        Events scheduled beyond ``time`` stay pending; the clock is advanced
        to exactly ``time`` so a subsequent ``run_until`` continues cleanly.
        With ``max_events`` the call returns early after that many
        dispatches, leaving the clock at the last fired event so the caller
        can interleave wall-clock deadline checks and resume (the worker
        wall-clock budget in :mod:`repro.experiments.runner` relies on
        this).  Returns the number of events dispatched.
        """
        if self._dead:
            raise SimulationError("simulator is dead after a power cut")
        if time < self._now:
            raise SimulationError(f"run_until({time}) is in the past (now={self._now})")
        self._stopped = False
        count = 0
        heap = self._heap
        while not self._stopped and heap:
            if max_events is not None and count >= max_events:
                return count
            head = heap[0]
            if head[3].cancelled:
                _heappop(heap)
                continue
            if head[0] > time:
                break
            _heappop(heap)
            self._dispatch(head[0], head[3])
            count += 1
        if not self._stopped:
            self._now = max(self._now, time)
        return count

    def stop(self) -> None:
        """Ask the running loop to stop after the current event."""
        self._stopped = True

    def resume_at(self, time: int) -> None:
        """Jump the idle clock forward to ``time`` (power-loss recovery).

        A host rebuilt around a recovered FTL continues the *same*
        timeline: its fresh simulator starts at the power-cut time plus
        the recovery-scan duration rather than zero.  Only legal before
        anything is scheduled -- moving the clock under pending events
        would violate the no-time-travel guarantee.
        """
        if self._heap:
            raise SimulationError("resume_at with events pending")
        if time < self._now:
            raise SimulationError(
                f"resume_at({time}) is in the past (now={self._now})"
            )
        self._now = time

    def power_cut(self) -> int:
        """Drop every pending event and stop the loop (sudden power-off).

        In-flight work dies with the power rail: nothing queued survives
        into recovery, which starts from durable state only.  Returns
        the number of live events discarded.  The simulator is dead
        afterwards -- further scheduling or running raises
        :class:`SimulationError`; recovery builds a fresh one
        (:meth:`resume_at` continues the timeline).
        """
        dropped = self._live
        for entry in self._heap:
            entry[3]._on_cancel = None
        self._heap.clear()
        self._live = 0
        self._stopped = True
        self._dead = True
        return dropped

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._live

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next live event, or ``None`` if idle.

        Cancelled heads are popped lazily, so the amortized cost is
        O(log n) per cancelled event rather than a full heap sort per
        call.
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            _heappop(heap)
        return heap[0][0] if heap else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator now={self._now} pending={self.pending()}>"
