"""Discrete-event simulation kernel.

This package provides the timing substrate on which every other subsystem
(NAND flash, FTL, SSD device, host page cache, workload generators) runs.
It is a small but complete event-driven kernel:

* :mod:`repro.sim.simtime` -- integer-nanosecond time base and unit helpers.
* :mod:`repro.sim.events` -- schedulable events with stable ordering.
* :mod:`repro.sim.engine` -- the :class:`Simulator` event loop.
* :mod:`repro.sim.process` -- generator-based sequential processes
  (used by closed-loop workload actors).
* :mod:`repro.sim.randomness` -- per-component seeded random streams.

All simulated time is kept as integer nanoseconds to make runs exactly
reproducible (no float drift between platforms).
"""

from repro.sim.simtime import (
    NANOSECOND,
    MICROSECOND,
    MILLISECOND,
    SECOND,
    format_time,
    ns_from_seconds,
    seconds_from_ns,
)
from repro.sim.events import (
    PRIORITY_CONTROL,
    PRIORITY_DEVICE,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    Event,
    EventPriority,
)
from repro.sim.engine import Simulator, SimulationError
from repro.sim.process import Process, Timeout, WaitFor, ProcessExit
from repro.sim.randomness import RandomStreams

__all__ = [
    "NANOSECOND",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "format_time",
    "ns_from_seconds",
    "seconds_from_ns",
    "Event",
    "EventPriority",
    "PRIORITY_DEVICE",
    "PRIORITY_NORMAL",
    "PRIORITY_CONTROL",
    "PRIORITY_LOW",
    "Simulator",
    "SimulationError",
    "Process",
    "Timeout",
    "WaitFor",
    "ProcessExit",
    "RandomStreams",
]
