"""NAND operation timing model.

The paper motivates JIT-GC with the growth of program time and block size
across NAND generations (Sec 1: 0.2 ms program / 64 pages-per-block at
130 nm versus 2.3 ms / 384 pages at 25 nm).  :class:`NandTiming` captures
per-operation latencies plus the channel transfer cost, and the module
exports presets for the generations the paper references.  The default for
all experiments is :data:`NAND_20NM_MLC`, matching the SM843T's flash.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.simtime import MICROSECOND, MILLISECOND


@dataclass(frozen=True)
class NandTiming:
    """Latencies of the three NAND primitives plus bus transfer.

    Attributes:
        read_ns: cell-to-register page read time (tR).
        program_ns: register-to-cell page program time (tPROG).
        erase_ns: block erase time (tBERS).
        transfer_ns_per_page: channel transfer time for one page of data
            (applies to both reads reaching the host and programs sourced
            from the host; internal GC copy-back pays it once per hop).
    """

    read_ns: int = 60 * MICROSECOND
    program_ns: int = 1300 * MICROSECOND
    erase_ns: int = 3800 * MICROSECOND
    transfer_ns_per_page: int = 25 * MICROSECOND

    def __post_init__(self) -> None:
        for field_name in ("read_ns", "program_ns", "erase_ns", "transfer_ns_per_page"):
            value = getattr(self, field_name)
            if not isinstance(value, int) or value < 0:
                raise ValueError(f"{field_name} must be a non-negative integer, got {value!r}")

    # ------------------------------------------------------------------
    # Composite costs used by the FTL / device model
    # ------------------------------------------------------------------
    def host_read_ns(self) -> int:
        """One page read delivered to the host (tR + transfer)."""
        return self.read_ns + self.transfer_ns_per_page

    def host_program_ns(self) -> int:
        """One page program sourced from the host (transfer + tPROG)."""
        return self.program_ns + self.transfer_ns_per_page

    def migrate_page_ns(self) -> int:
        """One GC valid-page migration (read + program, internal copy)."""
        return self.read_ns + self.program_ns

    def gc_block_ns(self, valid_pages: int) -> int:
        """Full cost of collecting one victim block with ``valid_pages``
        live pages: migrate each valid page, then erase the block."""
        if valid_pages < 0:
            raise ValueError(f"valid_pages must be >= 0, got {valid_pages}")
        return valid_pages * self.migrate_page_ns() + self.erase_ns


#: 130 nm SLC-era NAND (paper Sec 1 citation [1]): fast programs, small blocks.
NAND_130NM_SLC = NandTiming(
    read_ns=25 * MICROSECOND,
    program_ns=200 * MICROSECOND,
    erase_ns=2 * MILLISECOND,
    transfer_ns_per_page=50 * MICROSECOND,
)

#: 25 nm MLC NAND (paper Sec 1 citation [2]): 2.3 ms programs.
NAND_25NM_MLC = NandTiming(
    read_ns=75 * MICROSECOND,
    program_ns=2300 * MICROSECOND,
    erase_ns=5 * MILLISECOND,
    transfer_ns_per_page=20 * MICROSECOND,
)

#: 20 nm MLC NAND as used by the Samsung SM843T (the paper's testbed).
NAND_20NM_MLC = NandTiming(
    read_ns=60 * MICROSECOND,
    program_ns=1300 * MICROSECOND,
    erase_ns=3800 * MICROSECOND,
    transfer_ns_per_page=25 * MICROSECOND,
)
