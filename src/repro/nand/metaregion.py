"""Physical wear model of the reserved metadata region.

The logical durable-metadata log (:mod:`repro.ftl.metastore`) records
*what* survives a power cut; this module models *where it lives*: a
small ring of NAND blocks reserved outside the user-addressable space,
exactly like the metadata blocks of a real controller.  Checkpoint and
tombstone programs advance a ring frontier; wrapping onto a previously
written block erases it first, so metadata traffic ages the reserved
blocks through the same endurance arithmetic user blocks see, and -- with
a fault profile armed -- its programs and erases can fail like user
operations (drawn from the injector's dedicated "meta" stream so user
fault sequences stay untouched).

The ring is deliberately simpler than the user-space FTL: records are
compacted logically by :meth:`~repro.ftl.metastore.MetaLog.compact`
(old checkpoint generations dropped), so physically the ring only ever
needs to reclaim whole blocks in write order -- no per-page validity
tracking.  A block whose erase fails, or that reaches the P/E limit, is
retired; when every reserved block is retired the region is *exhausted*
and the FTL must stop writing durable metadata (it goes read-only: a
device that can no longer persist its mapping cannot accept writes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class MetaProgramOutcome:
    """Accounting for one metadata append routed through the region.

    Attributes:
        pages_programmed: payload pages successfully programmed.
        program_faults: pages whose program status-failed (each consumed
            a page and was rewritten on the next one).
        erases: ring-wrap block erases performed.
        erase_faults: erase attempts that failed (block retired).
        blocks_retired: reserved blocks retired during this append.
        exhausted: the region ran out of usable blocks; the tail of the
            payload was *not* durably programmed.
    """

    pages_programmed: int = 0
    program_faults: int = 0
    erases: int = 0
    erase_faults: int = 0
    blocks_retired: int = 0
    exhausted: bool = False
    #: Total NAND time consumed, filled in by :meth:`NandArray.meta_program`
    #: (programs -- successful and status-failed -- plus erase attempts).
    latency_ns: int = 0


class MetaRegion:
    """Ring of reserved NAND blocks absorbing durable-metadata programs.

    Args:
        blocks: reserved block count (small on real drives; the default
            lives in :class:`~repro.ssd.config.SsdConfig`).
        pages_per_block: geometry of the reserved blocks.
        pe_cycle_limit: endurance rating; None disables wear-out.
        fault_injector: the device's injector (``meta_*`` draws) or None.
    """

    def __init__(
        self,
        blocks: int,
        pages_per_block: int,
        pe_cycle_limit: Optional[int] = None,
        fault_injector=None,
    ) -> None:
        if blocks < 1:
            raise ValueError(f"meta region needs >= 1 block, got {blocks}")
        if pages_per_block < 1:
            raise ValueError(f"pages_per_block must be >= 1, got {pages_per_block}")
        self.blocks = blocks
        self.pages_per_block = pages_per_block
        self.pe_cycle_limit = pe_cycle_limit
        self.fault_injector = fault_injector

        self.erase_counts = np.zeros(blocks, dtype=np.int64)
        self.retired = np.zeros(blocks, dtype=bool)
        #: Blocks holding data from an earlier pass (erase before reuse).
        self._written = np.zeros(blocks, dtype=bool)
        self._block = 0
        self._page = 0

        #: Monotonic counters (mirrored into FtlStats by the FTL).
        self.pages_programmed = 0
        self.program_faults = 0
        self.block_erases = 0
        self.erase_faults = 0
        self.blocks_retired = 0

    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        """No reserved block can absorb another metadata program."""
        return bool(self.retired.all())

    def live_blocks(self) -> int:
        return int((~self.retired).sum())

    def total_erases(self) -> int:
        return int(self.erase_counts.sum())

    # ------------------------------------------------------------------
    def _retire(self, block: int, outcome: MetaProgramOutcome) -> None:
        self.retired[block] = True
        self.blocks_retired += 1
        outcome.blocks_retired += 1

    def _roll_frontier(self, outcome: MetaProgramOutcome) -> bool:
        """Advance to the next usable erased block; False when exhausted."""
        for _ in range(self.blocks):
            self._block = (self._block + 1) % self.blocks
            block = self._block
            if self.retired[block]:
                continue
            self._page = 0
            if not self._written[block]:
                return True
            # Ring wrap: reclaim the oldest block before reuse.
            injector = self.fault_injector
            if injector is not None and injector.meta_erase_fails(
                block, int(self.erase_counts[block])
            ):
                # A failed erase still stresses the cells (matches the
                # user path); with no spare pool to retry into, retire.
                self.erase_counts[block] += 1
                self.erase_faults += 1
                outcome.erase_faults += 1
                self._retire(block, outcome)
                continue
            self.erase_counts[block] += 1
            self.block_erases += 1
            outcome.erases += 1
            self._written[block] = False
            if (
                self.pe_cycle_limit is not None
                and self.erase_counts[block] >= self.pe_cycle_limit
            ):
                self._retire(block, outcome)
                continue
            return True
        return False

    def program(self, pages: int) -> MetaProgramOutcome:
        """Absorb ``pages`` metadata-page programs at the ring frontier.

        Mirrors the user-path failure semantics: a status-failed program
        consumes its page and the payload page is rewritten on the next
        one; an erase failure or wear-out retires the block.  Returns
        the accounting the FTL turns into latency, stats and -- on
        ``exhausted`` -- the read-only transition.
        """
        outcome = MetaProgramOutcome()
        if pages <= 0:
            return outcome
        if self.retired[self._block]:
            # The frontier block was retired (or the region restored
            # mid-life); find a fresh one before programming.
            if not self._roll_frontier(outcome):
                outcome.exhausted = True
                return outcome
        remaining = pages
        injector = self.fault_injector
        while remaining > 0:
            if self._page >= self.pages_per_block:
                if not self._roll_frontier(outcome):
                    outcome.exhausted = True
                    return outcome
            block, page = self._block, self._page
            self._page += 1
            self._written[block] = True
            if injector is not None and injector.meta_program_fails(
                block, page, int(self.erase_counts[block])
            ):
                self.program_faults += 1
                outcome.program_faults += 1
                continue  # page wasted; payload page retries on the next
            self.pages_programmed += 1
            outcome.pages_programmed += 1
            remaining -= 1
        return outcome

    # ------------------------------------------------------------------
    # Durability (captured with the NAND media image)
    # ------------------------------------------------------------------
    def capture(self) -> dict:
        """Deep-copied wear state for :class:`NandDurableState`."""
        return {
            "erase_counts": self.erase_counts.copy(),
            "retired": self.retired.copy(),
            "written": self._written.copy(),
            "block": self._block,
            "page": self._page,
        }

    @classmethod
    def restore(
        cls,
        state: dict,
        pages_per_block: int,
        pe_cycle_limit: Optional[int] = None,
        fault_injector=None,
    ) -> "MetaRegion":
        region = cls(
            blocks=len(state["erase_counts"]),
            pages_per_block=pages_per_block,
            pe_cycle_limit=pe_cycle_limit,
            fault_injector=fault_injector,
        )
        region.erase_counts[:] = state["erase_counts"]
        region.retired[:] = state["retired"]
        region._written[:] = state["written"]
        region._block = int(state["block"])
        region._page = int(state["page"])
        return region

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MetaRegion {self.live_blocks()}/{self.blocks} live "
            f"frontier={self._block}:{self._page} erases={self.total_erases()}>"
        )
