"""Exception hierarchy for NAND physical-rule violations.

These exceptions indicate *FTL bugs*, not recoverable device conditions:
a correct FTL never programs out of order, never writes a non-erased page
and never touches a block it has been told is bad.  They are therefore
plain programming errors and deliberately carry precise addresses.
"""

from __future__ import annotations


class NandError(Exception):
    """Base class for all NAND model errors."""


class AddressError(NandError, IndexError):
    """A block or page address is outside the device geometry."""

    def __init__(self, kind: str, value: int, limit: int) -> None:
        super().__init__(f"{kind} address {value} out of range [0, {limit})")
        self.kind = kind
        self.value = value
        self.limit = limit


class ProgramOrderError(NandError):
    """Pages within a block must be programmed strictly in order.

    Real NAND (especially MLC) forbids out-of-order page programming
    within a block; the model enforces it to catch FTL allocator bugs.
    """

    def __init__(self, block: int, page: int, expected: int) -> None:
        super().__init__(
            f"block {block}: attempted to program page {page}, "
            f"next programmable page is {expected}"
        )
        self.block = block
        self.page = page
        self.expected = expected


class EraseBeforeWriteError(NandError):
    """A page was programmed twice without an intervening block erase."""

    def __init__(self, block: int, page: int) -> None:
        super().__init__(
            f"block {block} page {page} already programmed; erase the block first"
        )
        self.block = block
        self.page = page


class BadBlockError(NandError):
    """An operation targeted a block marked bad (manufacture or wear-out)."""

    def __init__(self, block: int, operation: str) -> None:
        super().__init__(f"{operation} on bad block {block}")
        self.block = block
        self.operation = operation
