"""Exception hierarchy for NAND physical-rule violations and media faults.

Two distinct families live here:

* **FTL bugs** (:class:`AddressError`, :class:`ProgramOrderError`,
  :class:`EraseBeforeWriteError`, :class:`BadBlockError`) -- a correct
  FTL never programs out of order, never writes a non-erased page and
  never touches a block it has been told is bad.  These are plain
  programming errors and deliberately carry precise addresses.
* **Recoverable media faults** (:class:`RecoverableNandFault` and its
  subclasses) -- live NAND failures a real drive survives every day:
  program/erase operations that fail on worn cells and reads whose raw
  bit errors exceed the ECC correction strength.  The FTL is expected to
  *recover* from these (retry, rewrite elsewhere, retire the block), so
  they carry the latency already spent on the failed attempt.
"""

from __future__ import annotations


class NandError(Exception):
    """Base class for all NAND model errors."""


class AddressError(NandError, IndexError):
    """A block or page address is outside the device geometry."""

    def __init__(self, kind: str, value: int, limit: int) -> None:
        super().__init__(f"{kind} address {value} out of range [0, {limit})")
        self.kind = kind
        self.value = value
        self.limit = limit


class ProgramOrderError(NandError):
    """Pages within a block must be programmed strictly in order.

    Real NAND (especially MLC) forbids out-of-order page programming
    within a block; the model enforces it to catch FTL allocator bugs.
    """

    def __init__(self, block: int, page: int, expected: int) -> None:
        super().__init__(
            f"block {block}: attempted to program page {page}, "
            f"next programmable page is {expected}"
        )
        self.block = block
        self.page = page
        self.expected = expected


class EraseBeforeWriteError(NandError):
    """A page was programmed twice without an intervening block erase."""

    def __init__(self, block: int, page: int) -> None:
        super().__init__(
            f"block {block} page {page} already programmed; erase the block first"
        )
        self.block = block
        self.page = page


class BadBlockError(NandError):
    """An operation targeted a block marked bad (manufacture or wear-out)."""

    def __init__(self, block: int, operation: str) -> None:
        super().__init__(f"{operation} on bad block {block}")
        self.block = block
        self.operation = operation


# ----------------------------------------------------------------------
# Recoverable media faults (injected by repro.faults.FaultInjector)
# ----------------------------------------------------------------------
class RecoverableNandFault(NandError):
    """Base class for media faults the FTL must recover from.

    Distinct from the FTL-bug family above: catching ``NandError`` broadly
    in recovery code would hide real bugs, so recovery paths catch this
    class only.

    Attributes:
        block: the block the failed operation targeted.
        latency_ns: NAND time already spent on the failed attempt; the
            caller must charge it before retrying.
    """

    def __init__(self, message: str, block: int, latency_ns: int) -> None:
        super().__init__(message)
        self.block = block
        self.latency_ns = latency_ns


class ProgramFailError(RecoverableNandFault):
    """A page program operation failed (status-fail on worn cells).

    The target page is spoiled -- its charge state is undefined -- and
    per datasheet guidance the block should be retired after its live
    data is rewritten elsewhere.
    """

    def __init__(self, block: int, page: int, latency_ns: int) -> None:
        super().__init__(
            f"program failed at block {block} page {page}", block, latency_ns
        )
        self.page = page


class EraseFailError(RecoverableNandFault):
    """A block erase failed; the block is a grown-bad-block candidate."""

    def __init__(self, block: int, latency_ns: int) -> None:
        super().__init__(f"erase failed on block {block}", block, latency_ns)


class UncorrectableReadError(RecoverableNandFault):
    """Raw bit errors in a page exceeded the ECC correction strength.

    Real controllers respond with read-retry (shifted sensing
    voltages); the FTL models that as bounded re-reads.
    """

    def __init__(self, block: int, page: int, latency_ns: int) -> None:
        super().__init__(
            f"uncorrectable read at block {block} page {page}", block, latency_ns
        )
        self.page = page


class BatchFaultPending(NandError):
    """A batched program would hit an injected fault inside its range.

    Raised by :meth:`~repro.nand.array.NandArray.program_pages_batch`
    *before any state changes* when the fault injector's pre-clear draw
    finds a failure somewhere in the chunk.  The injector's RNG stream
    has already been restored to its pre-draw state, so the caller can
    fall back to the per-page path and replay the exact same draws --
    the mechanism behind fault-aware batched host writes.
    """

    def __init__(self, block: int, start_page: int, count: int) -> None:
        super().__init__(
            f"injected fault pending within batched program of block {block} "
            f"pages [{start_page}, {start_page + count})"
        )
        self.block = block
        self.start_page = start_page
        self.count = count
