"""The NAND array physical state machine.

:class:`NandArray` enforces the physical rules that drive the whole paper:

* **erase-before-write** -- a programmed page cannot be reprogrammed until
  its block is erased (out-place updates are therefore mandatory);
* **sequential in-block programming** -- pages of a block must be
  programmed in ascending order (MLC constraint);
* erases operate on whole blocks and wear them out.

It owns only *physical* state (program pointers, erase counts, bad-block
marks).  Logical state -- which pages are valid, the LPN↔PPN mapping -- is
the FTL's job (:mod:`repro.ftl`), mirroring the real hardware/firmware
split.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.nand.endurance import EnduranceModel, WearStats
from repro.nand.errors import (
    BadBlockError,
    EraseBeforeWriteError,
    EraseFailError,
    ProgramFailError,
    ProgramOrderError,
    UncorrectableReadError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultInjector
    from repro.nand.reliability import ReadDisturbTracker
from repro.nand.geometry import NandGeometry
from repro.nand.timing import NAND_20NM_MLC, NandTiming
from repro.obs.tracer import NULL_TRACER


class BlockState(enum.IntEnum):
    """Physical block lifecycle."""

    ERASED = 0    #: fully erased; no page programmed yet
    OPEN = 1      #: partially programmed (write frontier inside the block)
    FULL = 2      #: every page programmed
    BAD = 3       #: retired (manufacture defect or wear-out)


class NandArray:
    """Flat-addressed NAND array with timing and endurance accounting.

    Each operation returns its latency in integer nanoseconds; the caller
    (the SSD device model) accumulates these into simulated service times.

    Args:
        geometry: array organisation.
        timing: per-operation latencies (defaults to 20 nm MLC).
        endurance: erase-count model; a default one is created if omitted.
        initial_bad_blocks: optional iterable of factory-bad block numbers.
        read_disturb: optional per-block read-disturb tracker; reads are
            counted and erases reset the counter.
        fault_injector: optional deterministic media-fault source; when
            set, operations may raise the recoverable fault exceptions
            (:class:`~repro.nand.errors.RecoverableNandFault`).
    """

    def __init__(
        self,
        geometry: NandGeometry,
        timing: NandTiming = NAND_20NM_MLC,
        endurance: Optional[EnduranceModel] = None,
        initial_bad_blocks: Optional[list] = None,
        read_disturb: Optional["ReadDisturbTracker"] = None,
        fault_injector: Optional["FaultInjector"] = None,
    ) -> None:
        self.geometry = geometry
        self.timing = timing
        self.endurance = endurance or EnduranceModel(geometry.total_blocks)
        if self.endurance.num_blocks != geometry.total_blocks:
            raise ValueError(
                f"endurance model sized for {self.endurance.num_blocks} blocks, "
                f"geometry has {geometry.total_blocks}"
            )

        n = geometry.total_blocks
        #: Next programmable page index per block (== pages_per_block when full).
        self._next_page = np.zeros(n, dtype=np.int32)
        self._state = np.full(n, BlockState.ERASED, dtype=np.int8)

        self.read_disturb = read_disturb
        self.fault_injector = fault_injector
        #: Sim-time tracer; replaced by Observability.install when tracing.
        self.tracer = NULL_TRACER

        # Operation counters (for WAF and profiling).
        self.page_reads = 0
        self.page_programs = 0
        self.block_erases = 0
        #: Blocks retired at runtime via :meth:`mark_bad` (grown bad blocks).
        self.grown_bad_blocks = 0
        self.factory_bad_blocks = 0

        for block in initial_bad_blocks or []:
            geometry.check_block(block)
            if self._state[block] != BlockState.BAD:
                self._state[block] = BlockState.BAD
                self.factory_bad_blocks += 1

    # ------------------------------------------------------------------
    # Physical operations
    # ------------------------------------------------------------------
    def read_page(self, block: int, page: int) -> int:
        """Read one page; returns tR latency (no transfer).

        Raises:
            UncorrectableReadError: injected ECC failure; the tR latency
                of the failed sensing is attached to the exception.
        """
        self._check_addr(block, page, "read")
        self.page_reads += 1
        if self.read_disturb is not None:
            self.read_disturb.record_read(block)
        if self.fault_injector is not None and self.fault_injector.read_uncorrectable(
            block, page, self.endurance.erase_count(block)
        ):
            raise UncorrectableReadError(block, page, self.timing.read_ns)
        return self.timing.read_ns

    def reread_page(self, block: int, page: int) -> int:
        """One read-retry attempt (voltage-shifted re-sense) on ``block``.

        Used by FTL recovery after an :class:`UncorrectableReadError`;
        success is decided by the fault injector's retry stream.  Returns
        tR latency on success.

        Raises:
            UncorrectableReadError: the retry also failed to correct.
        """
        self._check_addr(block, page, "read")
        self.page_reads += 1
        if self.fault_injector is not None and not self.fault_injector.read_retry_succeeds():
            raise UncorrectableReadError(block, page, self.timing.read_ns)
        return self.timing.read_ns

    def program_page(self, block: int, page: int) -> int:
        """Program one page; returns tPROG latency (no transfer).

        Enforces sequential programming and erase-before-write.
        """
        self._check_addr(block, page, "program")
        next_page = int(self._next_page[block])
        if page < next_page:
            raise EraseBeforeWriteError(block, page)
        if page > next_page:
            raise ProgramOrderError(block, page, next_page)
        # The page is consumed whether or not the program succeeds: a
        # status-failed page holds an undefined charge state and can
        # never be reprogrammed without an erase.
        self._next_page[block] = next_page + 1
        if self._next_page[block] >= self.geometry.pages_per_block:
            self._state[block] = BlockState.FULL
        else:
            self._state[block] = BlockState.OPEN
        if self.fault_injector is not None and self.fault_injector.program_fails(
            block, page, self.endurance.erase_count(block)
        ):
            raise ProgramFailError(block, page, self.timing.program_ns)
        self.page_programs += 1
        return self.timing.program_ns

    def erase_block(self, block: int) -> int:
        """Erase a block; returns tBERS latency.

        The block may wear out (becomes BAD) if the endurance limit is
        reached; callers should check :meth:`is_bad` before reusing it.
        """
        self.geometry.check_block(block)
        if self._state[block] == BlockState.BAD:
            raise BadBlockError(block, "erase")
        if self.fault_injector is not None and self.fault_injector.erase_fails(
            block, self.endurance.erase_count(block)
        ):
            # A failed erase still stresses the cells; the block keeps
            # its (stale) contents and frontier until retried or retired.
            self.endurance.record_erase(block)
            raise EraseFailError(block, self.timing.erase_ns)
        self.block_erases += 1
        self._next_page[block] = 0
        if self.read_disturb is not None:
            self.read_disturb.reset(block)
        if self.endurance.record_erase(block):
            self._state[block] = BlockState.BAD
            if self.tracer.enabled:
                self.tracer.emit(
                    "nand",
                    "nand.wearout",
                    block=block,
                    erase_count=self.endurance.erase_count(block),
                )
        else:
            self._state[block] = BlockState.ERASED
        return self.timing.erase_ns

    def mark_bad(self, block: int) -> None:
        """Retire ``block`` as a grown bad block (program/erase failure).

        Idempotent; the FTL calls this after relocating any live data.
        """
        self.geometry.check_block(block)
        if self._state[block] != BlockState.BAD:
            self._state[block] = BlockState.BAD
            self.grown_bad_blocks += 1
            if self.tracer.enabled:
                self.tracer.emit("nand", "nand.mark_bad", block=block)

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    def block_state(self, block: int) -> BlockState:
        self.geometry.check_block(block)
        return BlockState(int(self._state[block]))

    def is_bad(self, block: int) -> bool:
        return self.block_state(block) == BlockState.BAD

    def next_programmable_page(self, block: int) -> int:
        """Write frontier of ``block`` (== pages_per_block when full)."""
        self.geometry.check_block(block)
        return int(self._next_page[block])

    def programmed_pages(self, block: int) -> int:
        return self.next_programmable_page(block)

    def good_blocks(self) -> int:
        """Number of non-bad blocks in the array."""
        return int(np.count_nonzero(self._state != BlockState.BAD))

    def wear_stats(self) -> WearStats:
        return self.endurance.stats()

    # ------------------------------------------------------------------
    def _check_addr(self, block: int, page: int, operation: str) -> None:
        self.geometry.check_block(block)
        self.geometry.check_page(page)
        if self._state[block] == BlockState.BAD:
            raise BadBlockError(block, operation)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<NandArray blocks={self.geometry.total_blocks} "
            f"programs={self.page_programs} erases={self.block_erases}>"
        )
