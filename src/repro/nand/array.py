"""The NAND array physical state machine.

:class:`NandArray` enforces the physical rules that drive the whole paper:

* **erase-before-write** -- a programmed page cannot be reprogrammed until
  its block is erased (out-place updates are therefore mandatory);
* **sequential in-block programming** -- pages of a block must be
  programmed in ascending order (MLC constraint);
* erases operate on whole blocks and wear them out.

It owns only *physical* state (program pointers, erase counts, bad-block
marks).  Logical state -- which pages are valid, the LPN↔PPN mapping -- is
the FTL's job (:mod:`repro.ftl`), mirroring the real hardware/firmware
split.

Hot-path layout (PERFORMANCE.md): per-block state lives in flat int32
vectors (``block_states``, ``program_ptr``, and the endurance model's
``erase_counts``) plus a ``bytearray`` bad-block mirror, so the per-op
address/state validation is a couple of int comparisons and one byte
probe instead of a geometry-property chain.  The original
geometry-backed validation is kept as the executable specification
(:meth:`_check_addr_scan`) and selected at construction time by the
:mod:`repro.perf` indexed/scan switch; both paths raise the exact same
exception types for the same inputs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro import perf
from repro.nand.endurance import EnduranceModel, WearStats
from repro.nand.errors import (
    AddressError,
    BadBlockError,
    BatchFaultPending,
    EraseBeforeWriteError,
    EraseFailError,
    ProgramFailError,
    ProgramOrderError,
    UncorrectableReadError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultInjector
    from repro.nand.reliability import ReadDisturbTracker
from repro.nand.geometry import NandGeometry
from repro.nand.metaregion import MetaProgramOutcome, MetaRegion
from repro.nand.timing import NAND_20NM_MLC, NandTiming
from repro.obs.tracer import NULL_TRACER


class BlockState(enum.IntEnum):
    """Physical block lifecycle."""

    ERASED = 0    #: fully erased; no page programmed yet
    OPEN = 1      #: partially programmed (write frontier inside the block)
    FULL = 2      #: every page programmed
    BAD = 3       #: retired (manufacture defect or wear-out)


#: Hoisted int values of :class:`BlockState` for the hot operation paths
#: (IntEnum member access goes through the enum metaclass and shows up in
#: per-page profiles).  ``block_states`` stores these raw ints.
STATE_ERASED: int = int(BlockState.ERASED)
STATE_OPEN: int = int(BlockState.OPEN)
STATE_FULL: int = int(BlockState.FULL)
STATE_BAD: int = int(BlockState.BAD)

#: Sentinel for "never stamped" OOB slots (LPN and sequence columns).
OOB_UNSTAMPED: int = -1


@dataclass
class NandDurableState:
    """Everything that survives a sudden power-off, as flat arrays.

    This is the media image the recovery scan works from: per-block
    physical state and program pointers, per-block erase counts (real
    drives keep wear counters in flash metadata), the bad-block table
    (factory marks distinguished from grown marks, as in a real BBT) and
    the per-page OOB columns.  Volatile controller state -- operation
    counters, the fault injector's RNG position, tracers -- is
    deliberately absent: it dies with the power rail.
    """

    block_states: np.ndarray
    program_ptr: np.ndarray
    erase_counts: np.ndarray
    bad: bytes
    factory_bad: np.ndarray
    oob_lpn: np.ndarray
    oob_seq: np.ndarray
    torn_pages: int
    factory_bad_blocks: int
    grown_bad_blocks: int
    #: Snapshot of the NAND-resident metadata log (checkpoints + unmap
    #: journal, see :mod:`repro.ftl.metastore`).  Records are immutable,
    #: so a tuple of them is already a deep copy.  Defaults to an empty
    #: log for images captured before durable metadata existed.
    meta: tuple = ()
    #: Wear snapshot of the reserved metadata blocks
    #: (:meth:`~repro.nand.metaregion.MetaRegion.capture`).  ``None`` for
    #: images captured before metadata wear accounting existed -- restore
    #: then starts the region fresh, like a drive whose BBT predates the
    #: firmware feature.
    meta_wear: Optional[dict] = None
    #: Per-block retention clock: sim time (ns) of each block's most
    #: recent program, the age base the reliability model's retention
    #: term works from.  Charge leaks whether the rail is up or not, so
    #: unlike the read-disturb counters (volatile DRAM state, reset at
    #: power-on) this vector *does* ride the durable image.  ``None``
    #: for images captured before the retention clock existed -- restore
    #: then treats all data as just-written.
    last_program_ns: Optional[np.ndarray] = None


class NandArray:
    """Flat-addressed NAND array with timing and endurance accounting.

    Each operation returns its latency in integer nanoseconds; the caller
    (the SSD device model) accumulates these into simulated service times.

    Args:
        geometry: array organisation.
        timing: per-operation latencies (defaults to 20 nm MLC).
        endurance: erase-count model; a default one is created if omitted.
        initial_bad_blocks: optional iterable of factory-bad block numbers.
        read_disturb: optional per-block read-disturb tracker; reads are
            counted and erases reset the counter.
        fault_injector: optional deterministic media-fault source; when
            set, operations may raise the recoverable fault exceptions
            (:class:`~repro.nand.errors.RecoverableNandFault`).
        meta_blocks: reserved metadata blocks (outside the user pool)
            whose wear/faults absorb checkpoint and tombstone programs
            (:class:`~repro.nand.metaregion.MetaRegion`).

    Attributes:
        block_states: int32 vector of per-block :class:`BlockState` raw
            values (authoritative physical state).
        program_ptr: int32 vector of next programmable page per block
            (== ``pages_per_block`` when full).
    """

    def __init__(
        self,
        geometry: NandGeometry,
        timing: NandTiming = NAND_20NM_MLC,
        endurance: Optional[EnduranceModel] = None,
        initial_bad_blocks: Optional[list] = None,
        read_disturb: Optional["ReadDisturbTracker"] = None,
        fault_injector: Optional["FaultInjector"] = None,
        meta_blocks: int = 4,
    ) -> None:
        self.geometry = geometry
        self.timing = timing
        self.endurance = endurance or EnduranceModel(geometry.total_blocks)
        if self.endurance.num_blocks != geometry.total_blocks:
            raise ValueError(
                f"endurance model sized for {self.endurance.num_blocks} blocks, "
                f"geometry has {geometry.total_blocks}"
            )

        n = geometry.total_blocks
        # Cached geometry/timing ints: the per-op paths must not walk
        # property chains (total_blocks alone is a multi-property product).
        self._num_blocks = n
        self._ppb = geometry.pages_per_block
        self._read_ns = timing.read_ns
        self._program_ns = timing.program_ns
        self._erase_ns = timing.erase_ns

        #: Next programmable page index per block (== pages_per_block when full).
        self.program_ptr = np.zeros(n, dtype=np.int32)
        self.block_states = np.full(n, STATE_ERASED, dtype=np.int32)
        # Bad-block mirror: the one-byte probe the fast address check
        # reads.  Mutated only where block_states transitions to/from BAD
        # (factory marks below, wear-out in erase_block, mark_bad).
        self._bad = bytearray(n)
        #: Factory bad-block table (survives power loss; grown marks are
        #: the set difference against :attr:`_bad`).
        self._factory_bad = np.zeros(n, dtype=bool)

        #: Per-page OOB metadata persisted atomically with each
        #: *successful* program: the logical page stored there and the
        #: FTL's monotonic write-sequence stamp.  ``OOB_UNSTAMPED`` (-1)
        #: marks never-stamped slots -- a consumed page whose OOB is
        #: unstamped is *torn* (program interrupted by power loss or a
        #: status-fail) and is discarded at recovery.
        total_pages = geometry.total_pages
        self.oob_lpn = np.full(total_pages, OOB_UNSTAMPED, dtype=np.int64)
        self.oob_seq = np.full(total_pages, OOB_UNSTAMPED, dtype=np.int64)
        #: Pages consumed by a power-cut mid-program (never OOB-stamped).
        self.torn_pages = 0

        # Local import: repro.ftl.metastore is NAND-layout code that the
        # ftl package owns; importing it at module scope would close an
        # import cycle (ftl.ftl imports this module).
        from repro.ftl.metastore import MetaLog

        #: NAND-resident metadata region (mapping checkpoints + unmap
        #: journal).  Modelled as reserved metadata blocks *outside* the
        #: user-addressable pool, so user capacity, the free pool and GC
        #: accounting are unaffected; programs/reads against it are
        #: charged by the FTL at the array's page timings.
        self.meta = MetaLog(geometry.page_size)

        #: Physical wear model of the reserved blocks backing ``meta``:
        #: a small erase ring that ages (and can fail) under checkpoint
        #: and tombstone traffic.  Shares the endurance rating and fault
        #: injector with the user blocks; see :meth:`meta_program`.
        self.meta_region = MetaRegion(
            meta_blocks,
            geometry.pages_per_block,
            pe_cycle_limit=self.endurance.pe_cycle_limit,
            fault_injector=fault_injector,
        )

        self.read_disturb = read_disturb
        self.fault_injector = fault_injector
        #: Sim-time tracer; replaced by Observability.install when tracing.
        self.tracer = NULL_TRACER

        #: Per-block retention clock: sim time (ns) of the most recent
        #: program.  Always allocated (it rides the durable image), but
        #: only *stamped* when a reliability clock is installed via
        #: :meth:`set_reliability_clock` -- with reliability off the
        #: vector stays untouched and the program/erase paths pay one
        #: ``is None`` check, keeping the off path bit-identical.
        self.last_program_ns = np.zeros(n, dtype=np.int64)
        self._reliability_clock = None

        # Operation counters (for WAF and profiling).
        self.page_reads = 0
        self.page_programs = 0
        self.block_erases = 0
        #: Batched program calls that landed on the bulk path (tests use
        #: this to assert fault runs still batch clean extents).
        self.batch_programs = 0
        #: Blocks retired at runtime via :meth:`mark_bad` (grown bad blocks).
        self.grown_bad_blocks = 0
        self.factory_bad_blocks = 0

        for block in initial_bad_blocks or []:
            geometry.check_block(block)
            if self.block_states[block] != STATE_BAD:
                self.block_states[block] = STATE_BAD
                self._bad[block] = 1
                self._factory_bad[block] = True
                self.factory_bad_blocks += 1

        # Address validation implementation, chosen at construction time
        # like every other repro.perf consumer: the fast path is a pair of
        # int range checks plus the bytearray probe; the scan path is the
        # original geometry-backed validation kept as executable spec.
        if perf.hotpath_indexing_enabled():
            self._check_addr = self._check_addr_fast
        else:
            self._check_addr = self._check_addr_scan

    def set_reliability_clock(self, clock) -> None:
        """Install the zero-arg ns clock that stamps the retention vector.

        Called by the FTL when a reliability profile is armed; without it
        the retention clock never ticks (the off path stays bit-identical
        to a build without the feature).
        """
        self._reliability_clock = clock

    @property
    def erase_counts(self) -> np.ndarray:
        """Per-block erase-count vector (view of the endurance model's)."""
        return self.endurance.erase_counts

    @property
    def factory_bad(self) -> np.ndarray:
        """Factory bad-block table (read-only view).

        The recovery scan diffs this against the live bad marks to
        re-discover *grown* bad blocks -- the set a real FTL keeps in its
        flash-resident BBT.
        """
        return self._factory_bad

    # ------------------------------------------------------------------
    # Physical operations
    # ------------------------------------------------------------------
    def read_page(self, block: int, page: int) -> int:
        """Read one page; returns tR latency (no transfer).

        Raises:
            UncorrectableReadError: injected ECC failure; the tR latency
                of the failed sensing is attached to the exception.
        """
        self._check_addr(block, page, "read")
        self.page_reads += 1
        if self.read_disturb is not None:
            self.read_disturb.record_read(block)
        if self.fault_injector is not None and self.fault_injector.read_uncorrectable(
            block, page, self.endurance.erase_count(block)
        ):
            raise UncorrectableReadError(block, page, self._read_ns)
        return self._read_ns

    def reread_page(self, block: int, page: int) -> int:
        """One read-retry attempt (voltage-shifted re-sense) on ``block``.

        Used by FTL recovery after an :class:`UncorrectableReadError`;
        success is decided by the fault injector's retry stream.  Returns
        tR latency on success.

        Raises:
            UncorrectableReadError: the retry also failed to correct.
        """
        self._check_addr(block, page, "read")
        self.page_reads += 1
        if self.fault_injector is not None and not self.fault_injector.read_retry_succeeds():
            raise UncorrectableReadError(block, page, self._read_ns)
        return self._read_ns

    def program_page(
        self, block: int, page: int, lpn: int = OOB_UNSTAMPED, seq: int = OOB_UNSTAMPED
    ) -> int:
        """Program one page; returns tPROG latency (no transfer).

        Enforces sequential programming and erase-before-write.  When
        ``seq`` is given, the page's OOB slot is stamped with
        ``(lpn, seq)`` -- but only on *success*: a status-failed program
        leaves the consumed page unstamped, so recovery sees it exactly
        like a power-cut torn page and discards it.
        """
        self._check_addr(block, page, "program")
        next_page = int(self.program_ptr[block])
        if page < next_page:
            raise EraseBeforeWriteError(block, page)
        if page > next_page:
            raise ProgramOrderError(block, page, next_page)
        # The page is consumed whether or not the program succeeds: a
        # status-failed page holds an undefined charge state and can
        # never be reprogrammed without an erase.
        next_page += 1
        self.program_ptr[block] = next_page
        self.block_states[block] = (
            STATE_FULL if next_page >= self._ppb else STATE_OPEN
        )
        if self.fault_injector is not None and self.fault_injector.program_fails(
            block, page, self.endurance.erase_count(block)
        ):
            raise ProgramFailError(block, page, self._program_ns)
        if seq != OOB_UNSTAMPED:
            ppn = block * self._ppb + page
            self.oob_lpn[ppn] = lpn
            self.oob_seq[ppn] = seq
        if self._reliability_clock is not None:
            self.last_program_ns[block] = self._reliability_clock()
        self.page_programs += 1
        return self._program_ns

    def erase_block(self, block: int) -> int:
        """Erase a block; returns tBERS latency.

        The block may wear out (becomes BAD) if the endurance limit is
        reached; callers should check :meth:`is_bad` before reusing it.
        """
        self._check_block(block, "erase")
        if self.fault_injector is not None and self.fault_injector.erase_fails(
            block, self.endurance.erase_count(block)
        ):
            # A failed erase still stresses the cells; the block keeps
            # its (stale) contents and frontier until retried or retired.
            self.endurance.record_erase(block)
            raise EraseFailError(block, self._erase_ns)
        self.block_erases += 1
        self.program_ptr[block] = 0
        start = block * self._ppb
        self.oob_lpn[start:start + self._ppb] = OOB_UNSTAMPED
        self.oob_seq[start:start + self._ppb] = OOB_UNSTAMPED
        if self.read_disturb is not None:
            self.read_disturb.reset(block)
        if self._reliability_clock is not None:
            # Erase re-bases the retention clock: whatever lands in the
            # block next starts its charge-leak life from now.
            self.last_program_ns[block] = self._reliability_clock()
        if self.endurance.record_erase(block):
            self.block_states[block] = STATE_BAD
            self._bad[block] = 1
            if self.tracer.enabled:
                self.tracer.emit(
                    "nand",
                    "nand.wearout",
                    block=block,
                    erase_count=self.endurance.erase_count(block),
                )
        else:
            self.block_states[block] = STATE_ERASED
        return self._erase_ns

    def meta_program(self, pages: int) -> MetaProgramOutcome:
        """Program ``pages`` metadata pages into the reserved region.

        Routes durable-metadata appends (checkpoints, unmap-journal
        tombstones) through the :class:`~repro.nand.metaregion.MetaRegion`
        wear/fault model and prices the resulting NAND work -- payload
        programs, status-failed retries and ring-wrap erases -- at this
        array's timings.  The returned outcome carries ``latency_ns``
        plus the fault/retirement accounting; ``outcome.exhausted`` means
        the region has no usable block left and the caller must stop
        accepting writes.
        """
        outcome = self.meta_region.program(pages)
        outcome.latency_ns = (
            (outcome.pages_programmed + outcome.program_faults) * self._program_ns
            + (outcome.erases + outcome.erase_faults) * self._erase_ns
        )
        return outcome

    def mark_bad(self, block: int) -> None:
        """Retire ``block`` as a grown bad block (program/erase failure).

        Idempotent; the FTL calls this after relocating any live data.
        """
        self.geometry.check_block(block)
        if self.block_states[block] != STATE_BAD:
            self.block_states[block] = STATE_BAD
            self._bad[block] = 1
            self.grown_bad_blocks += 1
            if self.tracer.enabled:
                self.tracer.emit("nand", "nand.mark_bad", block=block)

    def tear_frontier_page(self, block: int) -> Optional[int]:
        """Consume ``block``'s next frontier page without stamping its OOB.

        Models a program interrupted by sudden power loss: the cells were
        partially charged (the page can never be reprogrammed without an
        erase) but the atomic OOB stamp never landed, so the recovery
        scan detects the page as torn and discards it.  Returns the torn
        page index, or ``None`` when the block is bad or already full
        (nothing was in flight there).
        """
        if not 0 <= block < self._num_blocks or self._bad[block]:
            return None
        page = int(self.program_ptr[block])
        if page >= self._ppb:
            return None
        next_page = page + 1
        self.program_ptr[block] = next_page
        self.block_states[block] = (
            STATE_FULL if next_page >= self._ppb else STATE_OPEN
        )
        self.torn_pages += 1
        if self.tracer.enabled:
            self.tracer.emit("nand", "nand.torn_page", block=block, page=page)
        return page

    # ------------------------------------------------------------------
    # Durable-state capture / restore (power-loss emulation)
    # ------------------------------------------------------------------
    def capture_durable_state(self) -> NandDurableState:
        """Snapshot the media image that survives a power cut.

        Returns deep copies, so the snapshot stays valid while the live
        array keeps running (the crash-point sweep recovers a copy at
        each candidate point without disturbing the reference run).
        """
        return NandDurableState(
            block_states=self.block_states.copy(),
            program_ptr=self.program_ptr.copy(),
            erase_counts=self.endurance.erase_counts.copy(),
            bad=bytes(self._bad),
            factory_bad=self._factory_bad.copy(),
            oob_lpn=self.oob_lpn.copy(),
            oob_seq=self.oob_seq.copy(),
            torn_pages=self.torn_pages,
            factory_bad_blocks=self.factory_bad_blocks,
            grown_bad_blocks=self.grown_bad_blocks,
            meta=self.meta.capture(),
            meta_wear=self.meta_region.capture(),
            last_program_ns=self.last_program_ns.copy(),
        )

    @classmethod
    def from_durable(
        cls,
        geometry: NandGeometry,
        state: NandDurableState,
        timing: NandTiming = NAND_20NM_MLC,
        pe_cycle_limit: Optional[int] = 3000,
        fault_injector: Optional["FaultInjector"] = None,
        read_disturb: Optional["ReadDisturbTracker"] = None,
        meta_blocks: int = 4,
    ) -> "NandArray":
        """Build an array from a post-power-cut media image.

        The durable arrays are copied in (the snapshot stays reusable);
        volatile operation counters start at zero, mirroring a controller
        that just powered on.  ``pe_cycle_limit`` must match the original
        device's endurance limit (None disables wear-out, as in
        :class:`~repro.nand.endurance.EnduranceModel`) for wear-out
        behaviour to continue correctly.
        """
        endurance = EnduranceModel(
            geometry.total_blocks, pe_cycle_limit=pe_cycle_limit
        )
        nand = cls(
            geometry,
            timing=timing,
            endurance=endurance,
            read_disturb=read_disturb,
            fault_injector=fault_injector,
            meta_blocks=meta_blocks,
        )
        nand.block_states[:] = state.block_states
        nand.program_ptr[:] = state.program_ptr
        nand._bad[:] = state.bad
        nand._factory_bad[:] = state.factory_bad
        nand.oob_lpn[:] = state.oob_lpn
        nand.oob_seq[:] = state.oob_seq
        nand.torn_pages = state.torn_pages
        nand.factory_bad_blocks = state.factory_bad_blocks
        nand.grown_bad_blocks = state.grown_bad_blocks
        endurance.erase_counts[:] = state.erase_counts
        endurance.total_erases = int(state.erase_counts.sum())
        from repro.ftl.metastore import MetaLog  # local: import cycle

        nand.meta = MetaLog.restore(state.meta, geometry.page_size)
        if state.last_program_ns is not None:
            # Retention survives the power cut (cells leak regardless of
            # the rail); the read-disturb counters deliberately do NOT --
            # they are volatile controller DRAM, so the caller passes a
            # *fresh* tracker and the count restarts at zero, exactly
            # like a real power-on.
            nand.last_program_ns[:] = state.last_program_ns
        if state.meta_wear is not None:
            nand.meta_region = MetaRegion.restore(
                state.meta_wear,
                geometry.pages_per_block,
                pe_cycle_limit=pe_cycle_limit,
                fault_injector=fault_injector,
            )
        return nand

    # ------------------------------------------------------------------
    # Batched operations (GC migration fast path)
    # ------------------------------------------------------------------
    def read_pages_batch(self, block: int, count: int) -> int:
        """Read ``count`` pages of one block in bulk; returns total tR.

        Semantically identical to ``count`` successful :meth:`read_page`
        calls on in-range pages of ``block``: one address/state probe,
        counters and the read-disturb tracker bumped in bulk.  Only legal
        without a fault injector -- per-read fault-stream draws cannot be
        batched without reordering the RNG stream, so callers (the FTL's
        batched migration) must fall back to the per-page loop when
        faults are enabled.
        """
        if count <= 0:
            return 0
        if self.fault_injector is not None:
            raise RuntimeError("read_pages_batch requires fault_injector=None")
        self._check_addr(block, 0, "read")
        self.page_reads += count
        if self.read_disturb is not None:
            self.read_disturb.record_reads(block, count)
        return self._read_ns * count

    def program_pages_batch(
        self,
        block: int,
        start_page: int,
        count: int,
        lpns: Optional[np.ndarray] = None,
        first_lpn: int = OOB_UNSTAMPED,
        first_seq: int = OOB_UNSTAMPED,
    ) -> int:
        """Program ``count`` pages starting at the block's write frontier.

        Semantically identical to sequential :meth:`program_page` calls
        for pages ``start_page .. start_page+count-1``; enforces the same
        ordering/erase-before-write/geometry rules with the same
        exception types.  Returns the total tPROG latency.

        OOB stamping mirrors the per-page path: with ``first_seq`` set,
        page ``i`` of the batch is stamped ``(lpn_i, first_seq + i)``
        where ``lpn_i`` comes from the ``lpns`` array (GC migration) or
        the contiguous ``first_lpn + i`` run (host extents).

        With a fault injector attached, the injector's program stream is
        pre-drawn for the whole batch
        (:meth:`~repro.faults.injector.FaultInjector.program_batch_clear`):
        a clean batch consumes exactly the draws the per-page loop would
        and proceeds; a dirty one raises :class:`BatchFaultPending` with
        the stream restored and **no state modified**, so the caller
        replays the chunk per-page and hits the identical fault.
        """
        if count <= 0:
            return 0
        self._check_addr(block, start_page, "program")
        next_page = int(self.program_ptr[block])
        if start_page < next_page:
            raise EraseBeforeWriteError(block, start_page)
        if start_page > next_page:
            raise ProgramOrderError(block, start_page, next_page)
        last_page = start_page + count - 1
        if last_page >= self._ppb:
            # The per-page loop would fault on the first out-of-range page.
            raise AddressError("page", self._ppb, self._ppb)
        if self.fault_injector is not None and not self.fault_injector.program_batch_clear(
            block, count, self.endurance.erase_count(block)
        ):
            raise BatchFaultPending(block, start_page, count)
        next_page += count
        self.program_ptr[block] = next_page
        self.block_states[block] = (
            STATE_FULL if next_page >= self._ppb else STATE_OPEN
        )
        if first_seq != OOB_UNSTAMPED:
            base = block * self._ppb + start_page
            self.oob_seq[base:base + count] = np.arange(
                first_seq, first_seq + count, dtype=np.int64
            )
            if lpns is not None:
                self.oob_lpn[base:base + count] = lpns
            else:
                self.oob_lpn[base:base + count] = np.arange(
                    first_lpn, first_lpn + count, dtype=np.int64
                )
        if self._reliability_clock is not None:
            self.last_program_ns[block] = self._reliability_clock()
        self.page_programs += count
        self.batch_programs += 1
        return self._program_ns * count

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    def block_state(self, block: int) -> BlockState:
        self.geometry.check_block(block)
        return BlockState(int(self.block_states[block]))

    def is_bad(self, block: int) -> bool:
        return self.block_state(block) == BlockState.BAD

    def next_programmable_page(self, block: int) -> int:
        """Write frontier of ``block`` (== pages_per_block when full)."""
        self.geometry.check_block(block)
        return int(self.program_ptr[block])

    def programmed_pages(self, block: int) -> int:
        return self.next_programmable_page(block)

    def good_blocks(self) -> int:
        """Number of non-bad blocks in the array."""
        return int(np.count_nonzero(self.block_states != STATE_BAD))

    def wear_stats(self) -> WearStats:
        return self.endurance.stats()

    # ------------------------------------------------------------------
    # Address validation (fast probe vs geometry-backed executable spec)
    # ------------------------------------------------------------------
    def _check_addr_fast(self, block: int, page: int, operation: str) -> None:
        """Bounds + bad-block validation via cached ints and one byte probe.

        Explicit ``< 0`` checks matter: Python/bytearray indexing would
        silently wrap negative addresses to the tail of the array.
        """
        if 0 <= block < self._num_blocks:
            if not 0 <= page < self._ppb:
                raise AddressError("page", page, self._ppb)
            if self._bad[block]:
                raise BadBlockError(block, operation)
            return
        raise AddressError("block", block, self._num_blocks)

    def _check_addr_scan(self, block: int, page: int, operation: str) -> None:
        """Original geometry-backed validation (executable specification)."""
        self.geometry.check_block(block)
        self.geometry.check_page(page)
        if self.block_states[block] == STATE_BAD:
            raise BadBlockError(block, operation)

    def _check_block(self, block: int, operation: str) -> None:
        """Block-only validation for whole-block ops (erase)."""
        if not 0 <= block < self._num_blocks:
            raise AddressError("block", block, self._num_blocks)
        if self._bad[block]:
            raise BadBlockError(block, operation)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<NandArray blocks={self._num_blocks} "
            f"programs={self.page_programs} erases={self.block_erases}>"
        )
