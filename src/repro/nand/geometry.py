"""NAND array organisation.

The FTL addresses the array with *flat* block numbers and per-block page
offsets; :class:`NandGeometry` defines the hierarchy behind those flat
numbers (channel / chip / plane / block) and the derived capacities.

The default configuration used across the reproduction is a 1/256-scaled
Samsung SM843T: the paper's device is 240 GB user capacity with 7 %
over-provisioning on 20 nm MLC NAND.  Scaling the block count while keeping
the page size, pages/block and OP *ratio* preserves every quantity the
experiments depend on (GC pressure is governed by ratios, not absolute
bytes) while keeping pure-Python simulation fast.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NandGeometry:
    """Physical organisation of a NAND array.

    Attributes:
        page_size: bytes per NAND page.
        pages_per_block: pages in one erase block.
        blocks_per_plane: erase blocks per plane.
        planes_per_chip: planes per chip die.
        chips_per_channel: dies sharing one channel bus.
        channels: independent channel buses.
    """

    page_size: int = 4096
    pages_per_block: int = 128
    blocks_per_plane: int = 256
    planes_per_chip: int = 1
    chips_per_channel: int = 1
    channels: int = 1

    def __post_init__(self) -> None:
        for field_name in (
            "page_size",
            "pages_per_block",
            "blocks_per_plane",
            "planes_per_chip",
            "chips_per_channel",
            "channels",
        ):
            value = getattr(self, field_name)
            if not isinstance(value, int) or value <= 0:
                raise ValueError(f"{field_name} must be a positive integer, got {value!r}")

    # ------------------------------------------------------------------
    # Derived sizes
    # ------------------------------------------------------------------
    @property
    def total_chips(self) -> int:
        return self.channels * self.chips_per_channel

    @property
    def blocks_per_chip(self) -> int:
        return self.planes_per_chip * self.blocks_per_plane

    @property
    def total_blocks(self) -> int:
        """Flat block count across the whole array."""
        return self.total_chips * self.blocks_per_chip

    @property
    def total_pages(self) -> int:
        return self.total_blocks * self.pages_per_block

    @property
    def block_bytes(self) -> int:
        return self.pages_per_block * self.page_size

    @property
    def total_bytes(self) -> int:
        return self.total_pages * self.page_size

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def chip_of_block(self, block: int) -> int:
        """Chip index owning flat block number ``block``."""
        self.check_block(block)
        return block // self.blocks_per_chip

    def channel_of_block(self, block: int) -> int:
        """Channel index owning flat block number ``block``."""
        return self.chip_of_block(block) // self.chips_per_channel

    def plane_of_block(self, block: int) -> int:
        """Plane index (within its chip) of flat block number ``block``."""
        self.check_block(block)
        return (block % self.blocks_per_chip) // self.blocks_per_plane

    def check_block(self, block: int) -> None:
        if not 0 <= block < self.total_blocks:
            from repro.nand.errors import AddressError

            raise AddressError("block", block, self.total_blocks)

    def check_page(self, page: int) -> None:
        if not 0 <= page < self.pages_per_block:
            from repro.nand.errors import AddressError

            raise AddressError("page", page, self.pages_per_block)

    def pages_for_bytes(self, nbytes: int) -> int:
        """Pages needed to store ``nbytes`` (ceiling division)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return -(-nbytes // self.page_size)

    @classmethod
    def scaled_sm843t(cls, scale_denominator: int = 256) -> "NandGeometry":
        """SM843T-like geometry scaled down by ``scale_denominator``.

        The real device exposes 240 GB of user capacity plus ~7 % OP; with
        the default denominator of 256 this yields a ~1 GB physical array
        (page 4 KiB, 128 pages/block, 2048 blocks) -- small enough that a
        multi-hour simulated workload finishes in seconds of wall time.
        """
        if scale_denominator <= 0:
            raise ValueError("scale_denominator must be positive")
        # 240 GB user + 7% OP ~= 257 GB physical = 2^38-ish bytes.
        physical_bytes = int(240 * (1 << 30) * 1.07)
        scaled = physical_bytes // scale_denominator
        block_bytes = 128 * 4096
        blocks = max(64, scaled // block_bytes)
        return cls(page_size=4096, pages_per_block=128, blocks_per_plane=blocks)
