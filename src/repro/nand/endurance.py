"""Wear statistics and the block wear-out model.

Lifetime is the second axis of the paper's evaluation: WAF (write
amplification factor) is the proxy, because every amplified write turns
into extra program/erase cycles.  :class:`EnduranceModel` tracks erase
counts per block and can retire blocks that exceed their rated P/E cycles
(20 nm MLC is typically rated around 3K cycles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class WearStats:
    """Summary of wear across the array at a point in time."""

    total_erases: int
    max_erase_count: int
    min_erase_count: int
    mean_erase_count: float
    erase_count_stddev: float
    worn_out_blocks: int

    def imbalance(self) -> float:
        """Max/mean erase ratio; 1.0 means perfectly even wear."""
        if self.mean_erase_count == 0:
            return 1.0
        return self.max_erase_count / self.mean_erase_count


class EnduranceModel:
    """Per-block erase counting with optional wear-out.

    Args:
        num_blocks: flat block count of the array.
        pe_cycle_limit: rated program/erase cycles; ``None`` disables
            wear-out (blocks never retire, counts still tracked).
    """

    def __init__(self, num_blocks: int, pe_cycle_limit: Optional[int] = 3000) -> None:
        if num_blocks <= 0:
            raise ValueError(f"num_blocks must be positive, got {num_blocks}")
        if pe_cycle_limit is not None and pe_cycle_limit <= 0:
            raise ValueError(f"pe_cycle_limit must be positive, got {pe_cycle_limit}")
        self.num_blocks = num_blocks
        self.pe_cycle_limit = pe_cycle_limit
        # int32 is ample (rated limits are in the thousands) and keeps the
        # per-block state vectors cache-dense alongside the NAND array's.
        self.erase_counts = np.zeros(num_blocks, dtype=np.int32)
        self.total_erases = 0

    def record_erase(self, block: int) -> bool:
        """Count an erase of ``block``; returns True if the block wore out.

        A block wears out on the erase that *reaches* the P/E limit.
        """
        self.erase_counts[block] += 1
        self.total_erases += 1
        if self.pe_cycle_limit is None:
            return False
        return bool(self.erase_counts[block] >= self.pe_cycle_limit)

    def erase_count(self, block: int) -> int:
        return int(self.erase_counts[block])

    def remaining_cycles(self, block: int) -> Optional[int]:
        """Rated cycles left for ``block``; ``None`` if wear-out disabled."""
        if self.pe_cycle_limit is None:
            return None
        return max(0, self.pe_cycle_limit - int(self.erase_counts[block]))

    def stats(self) -> WearStats:
        """Snapshot of array-wide wear statistics."""
        counts = self.erase_counts
        worn = 0
        if self.pe_cycle_limit is not None:
            worn = int(np.count_nonzero(counts >= self.pe_cycle_limit))
        return WearStats(
            total_erases=self.total_erases,
            max_erase_count=int(counts.max(initial=0)),
            min_erase_count=int(counts.min(initial=0)),
            mean_erase_count=float(counts.mean()) if len(counts) else 0.0,
            erase_count_stddev=float(counts.std()) if len(counts) else 0.0,
            worn_out_blocks=worn,
        )
