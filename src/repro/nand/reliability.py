"""NAND reliability modelling: raw bit errors, ECC, read disturb.

The paper's lifetime argument is mediated by P/E cycling: every
amplified write consumes endurance, and endurance matters because the
raw bit error rate (RBER) of worn cells eventually exceeds what the ECC
can correct.  This module provides the standard analytic models that
connect the simulator's wear counters to reliability quantities:

* :class:`BitErrorModel` -- RBER as a function of P/E cycles, retention
  age and read-disturb count (power-law in wear, exponential-ish in
  retention, linear in disturbs -- the shapes reported for 2x-nm MLC).
* :class:`EccConfig` -- BCH-style correction strength per codeword, with
  the binomial-tail codeword/page failure probabilities.
* :class:`ReadDisturbTracker` -- per-block read counting with a scrub
  threshold, the counter real FTLs use to schedule refresh migrations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class BitErrorModel:
    """Analytic RBER model for MLC NAND.

    ``rber = base * (1 + (pe/pe_knee)^wear_exponent)
            * (1 + retention_s / retention_scale)
            * (1 + disturbs * disturb_factor)``

    Defaults are calibrated to public 20 nm-class MLC characterisation
    data: fresh cells around 1e-7..1e-6 RBER, approaching 1e-3 near the
    rated 3K cycles with a year of retention.

    Attributes:
        base_rber: RBER of a fresh, just-written page.
        pe_knee: P/E cycle count where wear roughly doubles the RBER.
        wear_exponent: super-linearity of wear degradation.
        retention_scale_s: retention age that roughly doubles the RBER.
        disturb_factor: per-read-disturb multiplier increment.
    """

    base_rber: float = 5e-7
    pe_knee: float = 800.0
    wear_exponent: float = 2.2
    retention_scale_s: float = 2_500_000.0  # ~29 days
    disturb_factor: float = 2e-5

    def __post_init__(self) -> None:
        if self.base_rber <= 0 or self.pe_knee <= 0:
            raise ValueError("base_rber and pe_knee must be positive")

    def rber(
        self,
        pe_cycles: int,
        retention_s: float = 0.0,
        read_disturbs: int = 0,
    ) -> float:
        """Raw bit error rate for the given stress state (capped at 0.5)."""
        if pe_cycles < 0 or retention_s < 0 or read_disturbs < 0:
            raise ValueError("stress parameters must be non-negative")
        wear = 1.0 + (pe_cycles / self.pe_knee) ** self.wear_exponent
        retention = 1.0 + retention_s / self.retention_scale_s
        disturb = 1.0 + read_disturbs * self.disturb_factor
        return min(0.5, self.base_rber * wear * retention * disturb)


@dataclass(frozen=True)
class EccConfig:
    """BCH-style ECC: ``correctable_bits`` per ``codeword_bytes``."""

    codeword_bytes: int = 1024
    correctable_bits: int = 40

    def __post_init__(self) -> None:
        if self.codeword_bytes <= 0 or self.correctable_bits < 0:
            raise ValueError("invalid ECC configuration")

    @property
    def codeword_bits(self) -> int:
        return self.codeword_bytes * 8

    def codeword_failure_probability(self, rber: float) -> float:
        """P[more than ``correctable_bits`` errors in one codeword].

        Binomial tail, evaluated with a numerically stable log-sum of
        the complementary head.
        """
        if not 0.0 <= rber <= 1.0:
            raise ValueError(f"rber must be in [0, 1], got {rber}")
        if rber == 0.0:
            return 0.0
        n, t = self.codeword_bits, self.correctable_bits
        # Head: P[X <= t]; tail = 1 - head.
        log_p = math.log(rber)
        log_q = math.log1p(-rber) if rber < 1.0 else float("-inf")
        head = 0.0
        for k in range(t + 1):
            log_term = (
                math.lgamma(n + 1)
                - math.lgamma(k + 1)
                - math.lgamma(n - k + 1)
                + k * log_p
                + (n - k) * log_q
            )
            head += math.exp(log_term)
        return max(0.0, 1.0 - min(1.0, head))

    def page_failure_probability(self, rber: float, page_bytes: int = 4096) -> float:
        """P[any codeword of a page is uncorrectable]."""
        codewords = max(1, -(-page_bytes // self.codeword_bytes))
        per_codeword = self.codeword_failure_probability(rber)
        return 1.0 - (1.0 - per_codeword) ** codewords


class ReadDisturbTracker:
    """Per-block read counting with a scrub threshold.

    Reading a page weakly programs its neighbours; after enough reads a
    block's data must be refreshed (migrated) before errors accumulate.
    Real FTLs keep exactly this counter; the GC experiments keep it
    observational so read-heavy workloads' refresh pressure can be
    reported without perturbing the GC comparison.
    """

    def __init__(self, num_blocks: int, scrub_threshold: int = 100_000) -> None:
        if num_blocks <= 0 or scrub_threshold <= 0:
            raise ValueError("num_blocks and scrub_threshold must be positive")
        self.scrub_threshold = scrub_threshold
        self.read_counts = np.zeros(num_blocks, dtype=np.int64)

    def record_read(self, block: int) -> bool:
        """Count one page read in ``block``; True when scrub is due."""
        self.read_counts[block] += 1
        return bool(self.read_counts[block] >= self.scrub_threshold)

    def record_reads(self, block: int, count: int) -> bool:
        """Count ``count`` page reads in ``block`` at once; True when scrub
        is due.  Equivalent to ``count`` :meth:`record_read` calls (the
        tracker is observational, so only the final counter matters)."""
        self.read_counts[block] += count
        return bool(self.read_counts[block] >= self.scrub_threshold)

    def reset(self, block: int) -> None:
        """Clear the counter after the block is refreshed/erased."""
        self.read_counts[block] = 0

    def blocks_needing_scrub(self) -> List[int]:
        return [int(b) for b in np.flatnonzero(self.read_counts >= self.scrub_threshold)]

    def max_reads(self) -> int:
        return int(self.read_counts.max(initial=0))
