"""NAND reliability modelling: raw bit errors, ECC, read disturb.

The paper's lifetime argument is mediated by P/E cycling: every
amplified write consumes endurance, and endurance matters because the
raw bit error rate (RBER) of worn cells eventually exceeds what the ECC
can correct.  This module provides the standard analytic models that
connect the simulator's wear counters to reliability quantities:

* :class:`BitErrorModel` -- RBER as a function of P/E cycles, retention
  age and read-disturb count (power-law in wear, exponential-ish in
  retention, linear in disturbs -- the shapes reported for 2x-nm MLC).
* :class:`EccConfig` -- BCH-style correction strength per codeword, with
  the binomial-tail codeword/page failure probabilities.
* :class:`ReadDisturbTracker` -- per-block read counting with a scrub
  threshold, the counter real FTLs use to schedule refresh migrations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Tuple, Union

import numpy as np


@dataclass(frozen=True)
class BitErrorModel:
    """Analytic RBER model for MLC NAND.

    ``rber = base * (1 + (pe/pe_knee)^wear_exponent)
            * (1 + retention_s / retention_scale)
            * (1 + disturbs * disturb_factor)``

    Defaults are calibrated to public 20 nm-class MLC characterisation
    data: fresh cells around 1e-7..1e-6 RBER, approaching 1e-3 near the
    rated 3K cycles with a year of retention.

    Attributes:
        base_rber: RBER of a fresh, just-written page.
        pe_knee: P/E cycle count where wear roughly doubles the RBER.
        wear_exponent: super-linearity of wear degradation.
        retention_scale_s: retention age that roughly doubles the RBER.
        disturb_factor: per-read-disturb multiplier increment.
    """

    base_rber: float = 5e-7
    pe_knee: float = 800.0
    wear_exponent: float = 2.2
    retention_scale_s: float = 2_500_000.0  # ~29 days
    disturb_factor: float = 2e-5

    def __post_init__(self) -> None:
        if self.base_rber <= 0 or self.pe_knee <= 0:
            raise ValueError("base_rber and pe_knee must be positive")

    def rber(
        self,
        pe_cycles: int,
        retention_s: float = 0.0,
        read_disturbs: int = 0,
    ) -> float:
        """Raw bit error rate for the given stress state (capped at 0.5)."""
        if pe_cycles < 0 or retention_s < 0 or read_disturbs < 0:
            raise ValueError("stress parameters must be non-negative")
        wear = 1.0 + (pe_cycles / self.pe_knee) ** self.wear_exponent
        retention = 1.0 + retention_s / self.retention_scale_s
        disturb = 1.0 + read_disturbs * self.disturb_factor
        return min(0.5, self.base_rber * wear * retention * disturb)


@dataclass(frozen=True)
class EccConfig:
    """BCH-style ECC: ``correctable_bits`` per ``codeword_bytes``."""

    codeword_bytes: int = 1024
    correctable_bits: int = 40

    def __post_init__(self) -> None:
        if self.codeword_bytes <= 0 or self.correctable_bits < 0:
            raise ValueError("invalid ECC configuration")

    @property
    def codeword_bits(self) -> int:
        return self.codeword_bytes * 8

    def codeword_failure_probability(self, rber: float) -> float:
        """P[more than ``correctable_bits`` errors in one codeword].

        Binomial tail, evaluated with a numerically stable log-sum of
        the complementary head.
        """
        if not 0.0 <= rber <= 1.0:
            raise ValueError(f"rber must be in [0, 1], got {rber}")
        if rber == 0.0:
            return 0.0
        n, t = self.codeword_bits, self.correctable_bits
        # Head: P[X <= t]; tail = 1 - head.
        log_p = math.log(rber)
        log_q = math.log1p(-rber) if rber < 1.0 else float("-inf")
        head = 0.0
        for k in range(t + 1):
            log_term = (
                math.lgamma(n + 1)
                - math.lgamma(k + 1)
                - math.lgamma(n - k + 1)
                + k * log_p
                + (n - k) * log_q
            )
            head += math.exp(log_term)
        return max(0.0, 1.0 - min(1.0, head))

    def page_failure_probability(self, rber: float, page_bytes: int = 4096) -> float:
        """P[any codeword of a page is uncorrectable]."""
        codewords = max(1, -(-page_bytes // self.codeword_bytes))
        per_codeword = self.codeword_failure_probability(rber)
        return 1.0 - (1.0 - per_codeword) ** codewords


class ReadDisturbTracker:
    """Per-block read counting with a scrub threshold.

    Reading a page weakly programs its neighbours; after enough reads a
    block's data must be refreshed (migrated) before errors accumulate.
    Real FTLs keep exactly this counter; the GC experiments keep it
    observational so read-heavy workloads' refresh pressure can be
    reported without perturbing the GC comparison.
    """

    def __init__(self, num_blocks: int, scrub_threshold: int = 100_000) -> None:
        if num_blocks <= 0 or scrub_threshold <= 0:
            raise ValueError("num_blocks and scrub_threshold must be positive")
        self.scrub_threshold = scrub_threshold
        self.read_counts = np.zeros(num_blocks, dtype=np.int64)

    def record_read(self, block: int) -> bool:
        """Count one page read in ``block``; True when scrub is due."""
        self.read_counts[block] += 1
        return bool(self.read_counts[block] >= self.scrub_threshold)

    def record_reads(self, block: int, count: int) -> bool:
        """Count ``count`` page reads in ``block`` at once; True when scrub
        is due.  Equivalent to ``count`` :meth:`record_read` calls (the
        tracker is observational, so only the final counter matters)."""
        self.read_counts[block] += count
        return bool(self.read_counts[block] >= self.scrub_threshold)

    def reset(self, block: int) -> None:
        """Clear the counter after the block is refreshed/erased."""
        self.read_counts[block] = 0

    def blocks_needing_scrub(self) -> List[int]:
        return [int(b) for b in np.flatnonzero(self.read_counts >= self.scrub_threshold)]

    def max_reads(self) -> int:
        return int(self.read_counts.max(initial=0))


# ----------------------------------------------------------------------
# Live reliability: profiles and the deterministic ECC escalation ladder
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReliabilityProfile:
    """Everything the live data-integrity subsystem needs, in one knob.

    A profile bundles the analytic models above with the *pricing* of the
    read-path escalation ladder and the refresh scrubber's thresholds.
    Selected by name (``--reliability mlc-20nm``); ``None``/"off" keeps
    every hook un-installed and the simulator bit-identical to the
    reliability-free build.

    Ladder semantics (deterministic -- see :class:`ReliabilityModel`):
    a read whose *expected* codeword errors fit inside
    ``fast_margin * correctable_bits`` succeeds at the normal tR cost.
    Otherwise the controller steps through ``retry_latency_ns`` levels;
    level ``i`` re-senses at a shifted voltage, modelled as scaling the
    effective RBER by ``retry_rber_factors[i]``.  If no hard re-read
    fits, a soft-decode pass (LDPC-style, ``soft_decode_latency_ns``)
    may still recover the data at ``soft_decode_rber_factor`` and the
    ECC's *full* strength; beyond that the read is a UECC.

    Attributes:
        name: registry key (also the CLI spelling).
        bit_error_model / ecc: the analytic halves being driven.
        page_bytes: logical page size assumed for page-level failure math.
        fast_margin: fraction of the correction strength the controller
            is willing to consume on the fast path (real controllers
            escalate with head-room: a codeword running at its exact
            limit has no margin against RBER variance).
        retry_latency_ns: per-level re-read cost, monotonically
            non-decreasing (deeper levels shift more read voltages).
        retry_rber_factors: per-level effective-RBER multiplier, in
            (0, 1), non-increasing.
        soft_decode_latency_ns: cost of the soft-decode pass.
        soft_decode_rber_factor: effective-RBER multiplier of soft decode.
        scrub: arm the background refresh scrubber.
        retention_threshold_s: modelled retention age at which a block is
            scheduled for refresh.
        disturb_threshold: per-block read count at which a block is
            scheduled for refresh (also sizes the
            :class:`ReadDisturbTracker` built for the device).
        scrub_scan_blocks: blocks examined per idle scrub tick by the
            scan cursor.
        retention_accel: simulated-seconds -> modelled-seconds multiplier
            (accelerated-retention testing; 1.0 = real time).
    """

    name: str = "mlc-20nm"
    bit_error_model: BitErrorModel = field(default_factory=BitErrorModel)
    ecc: EccConfig = field(default_factory=EccConfig)
    page_bytes: int = 4096
    fast_margin: float = 0.30
    retry_latency_ns: Tuple[int, ...] = (60_000, 90_000, 140_000)
    retry_rber_factors: Tuple[float, ...] = (0.72, 0.55, 0.42)
    soft_decode_latency_ns: int = 400_000
    soft_decode_rber_factor: float = 0.25
    scrub: bool = True
    retention_threshold_s: float = 2_600_000.0  # ~30 days
    disturb_threshold: int = 200_000
    scrub_scan_blocks: int = 8
    retention_accel: float = 1.0

    def __post_init__(self) -> None:
        if self.page_bytes <= 0:
            raise ValueError(f"page_bytes must be positive, got {self.page_bytes}")
        if not 0.0 < self.fast_margin <= 1.0:
            raise ValueError(
                f"fast_margin must be in (0, 1], got {self.fast_margin}"
            )
        if len(self.retry_latency_ns) != len(self.retry_rber_factors):
            raise ValueError(
                "retry ladder mismatch: "
                f"{len(self.retry_latency_ns)} latencies vs "
                f"{len(self.retry_rber_factors)} RBER factors"
            )
        prev = 0
        for i, lat in enumerate(self.retry_latency_ns):
            if lat <= 0:
                raise ValueError(
                    f"retry_latency_ns[{i}] must be positive, got {lat}"
                )
            if lat < prev:
                raise ValueError(
                    "retry_latency_ns must be monotonically non-decreasing "
                    f"(deeper retry levels cost at least as much); "
                    f"level {i} ({lat} ns) undercuts level {i - 1} ({prev} ns)"
                )
            prev = lat
        prev_f = 1.0
        for i, factor in enumerate(self.retry_rber_factors):
            if not 0.0 < factor < 1.0:
                raise ValueError(
                    f"retry_rber_factors[{i}] must be in (0, 1), got {factor}"
                )
            if factor > prev_f:
                raise ValueError(
                    "retry_rber_factors must be non-increasing (each level "
                    f"corrects at least as well); level {i} ({factor}) "
                    f"exceeds level {i - 1} ({prev_f})"
                )
            prev_f = factor
        if self.soft_decode_latency_ns <= 0:
            raise ValueError(
                "soft_decode_latency_ns must be positive, got "
                f"{self.soft_decode_latency_ns}"
            )
        if not 0.0 < self.soft_decode_rber_factor < 1.0:
            raise ValueError(
                "soft_decode_rber_factor must be in (0, 1), got "
                f"{self.soft_decode_rber_factor}"
            )
        if self.retention_threshold_s < 0:
            raise ValueError(
                "retention_threshold_s must be non-negative, got "
                f"{self.retention_threshold_s}"
            )
        if self.disturb_threshold <= 0:
            raise ValueError(
                f"disturb_threshold must be positive, got {self.disturb_threshold}"
            )
        if self.scrub_scan_blocks <= 0:
            raise ValueError(
                f"scrub_scan_blocks must be positive, got {self.scrub_scan_blocks}"
            )
        if self.retention_accel <= 0:
            raise ValueError(
                f"retention_accel must be positive, got {self.retention_accel}"
            )


#: Named profiles, selectable via ``--reliability``.  ``mlc-20nm`` is the
#: realistic 20 nm-class MLC operating point: at sane wear and retention
#: every read stays on the fast path, the scrubber idles (nothing crosses
#: a threshold inside a short simulation), and the profile's cost is the
#: per-read bookkeeping alone.  ``mlc-20nm-accel`` compresses months of
#: retention into simulated seconds (used by the scrub acceptance tests
#: and demos): un-refreshed data visibly decays to UECC within a run.
RELIABILITY_PROFILES: Dict[str, ReliabilityProfile] = {
    "mlc-20nm": ReliabilityProfile(),
    "mlc-20nm-accel": ReliabilityProfile(
        name="mlc-20nm-accel",
        bit_error_model=BitErrorModel(base_rber=1e-4, retention_scale_s=5_000.0),
        retention_threshold_s=200_000.0,
        disturb_threshold=50_000,
        retention_accel=50_000.0,
        scrub_scan_blocks=32,
    ),
}


def resolve_reliability_profile(
    profile: Union[None, str, ReliabilityProfile],
) -> Optional[ReliabilityProfile]:
    """Name/instance/None -> validated profile (None and "off" disable)."""
    if profile is None or isinstance(profile, ReliabilityProfile):
        return profile
    if profile == "off":
        return None
    try:
        return RELIABILITY_PROFILES[profile]
    except KeyError:
        known = ", ".join(sorted(RELIABILITY_PROFILES))
        raise ValueError(
            f"unknown reliability profile {profile!r}; expected one of: "
            f"off, {known}"
        ) from None


class ReadOutcome(NamedTuple):
    """One read's journey through the ECC escalation ladder.

    ``level`` is 0 for a fast-path success, ``i > 0`` when hard re-read
    level ``i`` recovered the data; ``soft`` marks a soft-decode rescue.
    ``extra_ns`` is the ladder's latency on top of the base tR (every
    attempted level is paid for, success or not); ``ok=False`` is a UECC
    -- the whole ladder was paid and the data is still gone.
    """

    ok: bool
    level: int
    soft: bool
    extra_ns: int


class ReliabilityModel:
    """Deterministic ECC escalation ladder over a stress state.

    The ladder compares *expected* codeword errors (``rber *
    codeword_bits``) against the correction strength rather than drawing
    per-read Bernoulli outcomes: reads of a block in a given (wear,
    retention, disturb) state all behave identically, the off/on
    equivalence argument stays trivial (no RNG stream is consumed), and
    the fault injector's seeded streams compose unchanged on top.

    Outcomes are cached per stress *bucket* (wear quantised to 64 P/E
    cycles -- matching the injector's page-failure cache -- retention to
    4096 modelled seconds, disturbs to 4096 reads), so the steady-state
    read path costs one tuple hash, not a ladder walk.
    """

    #: Bucket shifts: P/E cycles, modelled retention seconds, read count.
    _PE_SHIFT = 6
    _RET_SHIFT = 12
    _DIST_SHIFT = 12

    def __init__(self, profile: ReliabilityProfile) -> None:
        self.profile = profile
        bits = profile.ecc.codeword_bits
        strength = float(profile.ecc.correctable_bits)
        #: RBER ceilings per rung, precomputed so the ladder walk is a
        #: couple of float compares: fast path, each hard retry level,
        #: then soft decode (full strength, no fast margin).
        self._fast_rber = profile.fast_margin * strength / bits
        self._retry_rber = tuple(
            self._fast_rber / factor for factor in profile.retry_rber_factors
        )
        self._soft_rber = (strength / bits) / profile.soft_decode_rber_factor
        #: Cumulative latency of attempting levels 0..i.
        cumulative, total = [], 0
        for lat in profile.retry_latency_ns:
            total += lat
            cumulative.append(total)
        self._retry_cost = tuple(cumulative)
        self._ladder_cost = total  # every hard level attempted
        self._cache: Dict[Tuple[int, int, int], ReadOutcome] = {}

    def expected_rber(
        self, pe_cycles: int, retention_s: float, read_disturbs: int
    ) -> float:
        """Bucket-floored RBER for the given stress state."""
        return self.profile.bit_error_model.rber(
            (pe_cycles >> self._PE_SHIFT) << self._PE_SHIFT,
            retention_s=float(
                (int(retention_s) >> self._RET_SHIFT) << self._RET_SHIFT
            ),
            read_disturbs=(read_disturbs >> self._DIST_SHIFT) << self._DIST_SHIFT,
        )

    def read_outcome(
        self, pe_cycles: int, retention_s: float, read_disturbs: int
    ) -> ReadOutcome:
        """Walk (or recall) the ladder for one stress state."""
        key = (
            pe_cycles >> self._PE_SHIFT,
            int(retention_s) >> self._RET_SHIFT,
            read_disturbs >> self._DIST_SHIFT,
        )
        outcome = self._cache.get(key)
        if outcome is None:
            outcome = self._walk(
                self.profile.bit_error_model.rber(
                    key[0] << self._PE_SHIFT,
                    retention_s=float(key[1] << self._RET_SHIFT),
                    read_disturbs=key[2] << self._DIST_SHIFT,
                )
            )
            self._cache[key] = outcome
        return outcome

    def _walk(self, rber: float) -> ReadOutcome:
        if rber <= self._fast_rber:
            return ReadOutcome(ok=True, level=0, soft=False, extra_ns=0)
        for i, ceiling in enumerate(self._retry_rber):
            if rber <= ceiling:
                return ReadOutcome(
                    ok=True, level=i + 1, soft=False, extra_ns=self._retry_cost[i]
                )
        soft_cost = self._ladder_cost + self.profile.soft_decode_latency_ns
        if rber <= self._soft_rber:
            return ReadOutcome(
                ok=True,
                level=len(self._retry_rber),
                soft=True,
                extra_ns=soft_cost,
            )
        return ReadOutcome(
            ok=False, level=len(self._retry_rber), soft=True, extra_ns=soft_cost
        )
