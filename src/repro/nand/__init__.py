"""NAND flash memory model.

Models the physical substrate the FTL manages:

* :mod:`repro.nand.geometry` -- array organisation (channels, chips,
  planes, blocks, pages) with flat block addressing for the FTL.
* :mod:`repro.nand.timing` -- per-operation latencies with presets for
  the NAND generations the paper cites (130 nm ... 20 nm MLC as used in
  the Samsung SM843T).
* :mod:`repro.nand.array` -- the physical state machine: sequential
  in-block programming, erase-before-write, erase counting.
* :mod:`repro.nand.endurance` -- wear statistics and wear-out model.
* :mod:`repro.nand.errors` -- exception types for physical-rule violations.
"""

from repro.nand.geometry import NandGeometry
from repro.nand.timing import (
    NandTiming,
    NAND_130NM_SLC,
    NAND_25NM_MLC,
    NAND_20NM_MLC,
)
from repro.nand.array import OOB_UNSTAMPED, BlockState, NandArray, NandDurableState
from repro.nand.endurance import EnduranceModel, WearStats
from repro.nand.reliability import BitErrorModel, EccConfig, ReadDisturbTracker
from repro.nand.errors import (
    NandError,
    ProgramOrderError,
    EraseBeforeWriteError,
    BadBlockError,
    BatchFaultPending,
    AddressError,
)

__all__ = [
    "NandGeometry",
    "NandTiming",
    "NAND_130NM_SLC",
    "NAND_25NM_MLC",
    "NAND_20NM_MLC",
    "NandArray",
    "NandDurableState",
    "OOB_UNSTAMPED",
    "BlockState",
    "BatchFaultPending",
    "EnduranceModel",
    "WearStats",
    "BitErrorModel",
    "EccConfig",
    "ReadDisturbTracker",
    "NandError",
    "ProgramOrderError",
    "EraseBeforeWriteError",
    "BadBlockError",
    "AddressError",
]
