"""Page-mapped FTL with foreground and background garbage collection.

:class:`PageMappedFtl` is the firmware model: it owns the logical→physical
mapping, the free-block pool, the write frontiers and the GC engine.  It
is deliberately synchronous -- every operation returns its NAND latency in
nanoseconds -- and the SSD *device* model (:mod:`repro.ssd.device`) turns
those latencies into simulated time, queueing and idleness.

Write datapath (out-place update)::

    host write LPN
      -> frontier page in the active user block (allocate a new free
         block when the frontier fills)
      -> remap LPN, invalidating the previous physical page
    if the free pool is at the watermark  ->  FOREGROUND GC (stall)

GC datapath::

    pick victim (pluggable selector; the paper's SIP filter plugs here)
      -> migrate valid pages to the GC frontier
      -> erase victim, return it to the wear-ordered free pool

The separation of user and GC write frontiers gives the natural hot/cold
separation real FTLs rely on: migrated (cold-ish) data does not share
blocks with fresh (hot) data.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro import perf
from repro.ftl.checkpoint_policy import CheckpointPolicy, IntervalCheckpointPolicy
from repro.ftl.mapping import TRANS_LPN_BASE, UNMAPPED, CachedPageMap, PageMap
from repro.ftl.metastore import KIND_CHECKPOINT, KIND_UNMAP, build_checkpoint, build_tombstones
from repro.ftl.scrub import RefreshScrubber
from repro.ftl.space import SipOverlapIndex, SpaceModel, ValidCountIndex
from repro.ftl.stats import FtlStats
from repro.ftl.victim import GreedySelector, VictimSelector
from repro.ftl.wear import StaticWearLeveler, WearAwareAllocator
from repro.nand.array import NandArray
from repro.nand.errors import (
    BatchFaultPending,
    EraseFailError,
    ProgramFailError,
    UncorrectableReadError,
)
from repro.nand.reliability import ReliabilityModel, ReliabilityProfile
from repro.obs.audit import (
    CheckpointRecord,
    DISABLED_AUDIT,
    FaultRecord,
    MappingFaultRecord,
    VictimRecord,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ftl.recovery import RecoveredFtlState


class FtlError(RuntimeError):
    """Base class for FTL failures."""


class OutOfSpaceError(FtlError):
    """The FTL cannot find a victim with reclaimable garbage.

    Happens only when live data approaches the physical capacity; with
    standard OP ratios it indicates a misconfigured scenario.
    """


class DeviceReadOnlyError(FtlError):
    """The device has entered its terminal read-only state.

    Raised for writes once grown bad blocks have eaten the entire
    over-provisioning capacity (or the spare pool), the graceful end of
    life of a real SSD: reads still work, writes are refused.
    """


class PageMappedFtl:
    """Page-level FTL over a :class:`~repro.nand.array.NandArray`.

    Args:
        nand: the physical array.
        space: user/OP capacity split.
        victim_selector: GC victim policy (greedy by default; JIT-GC
            installs a :class:`~repro.ftl.victim.SipFilteredSelector`).
        fgc_watermark: free-pool size at or below which a host write must
            run foreground GC first.  Must be >= 2 so GC migrations always
            have a block to allocate.
        fgc_penalty: latency multiplier applied to foreground GC.  A
            foreground collection on a real drive costs more than the raw
            NAND operations: the request pipeline drains, mapping-table
            updates flush, and the host-interface queue stalls.  The
            multiplier models that overhead (4.0 by default; 1.0 gives
            the pure NAND-cost model).
        clock: zero-arg callable returning the current simulated time in
            nanoseconds (used for block-age bookkeeping); defaults to an
            operation counter when the FTL is used standalone.
        wear_leveler: optional static wear leveller.
        max_read_retries: voltage-shift re-reads attempted after an
            uncorrectable read before declaring the data lost.
        max_program_retries: frontier slots tried per logical page before
            a program failure is considered fatal.
        max_erase_retries: erase re-attempts before a block is retired as
            grown-bad.
        reliability: optional :class:`~repro.nand.reliability.ReliabilityProfile`
            arming the live data-integrity subsystem: reads run the
            deterministic ECC escalation ladder (fast decode -> priced
            read-retry levels -> soft decode -> UECC), the NAND retention
            clock is driven by this FTL's clock, and -- when the profile
            enables it -- a background refresh scrubber nominates at-risk
            blocks for relocation.  None (default) keeps the historical
            bit-identical behavior.
    """

    def __init__(
        self,
        nand: NandArray,
        space: SpaceModel,
        victim_selector: Optional[VictimSelector] = None,
        fgc_watermark: int = 2,
        clock: Optional[Callable[[], int]] = None,
        wear_leveler: Optional[StaticWearLeveler] = None,
        fgc_penalty: float = 4.0,
        max_read_retries: int = 4,
        max_program_retries: int = 4,
        max_erase_retries: int = 2,
        checkpoint_interval_pages: Optional[int] = None,
        journal_unmaps: bool = True,
        registry: Optional[MetricsRegistry] = None,
        recovered: Optional["RecoveredFtlState"] = None,
        mapping_mode: str = "dram",
        cmt_budget_bytes: Optional[int] = None,
        checkpoint_policy: Optional[CheckpointPolicy] = None,
        reliability: Optional[ReliabilityProfile] = None,
    ) -> None:
        if space.geometry is not nand.geometry:
            raise ValueError("space model and NAND array use different geometries")
        if fgc_watermark < 2:
            raise ValueError(f"fgc_watermark must be >= 2, got {fgc_watermark}")
        if mapping_mode not in ("dram", "dftl"):
            raise ValueError(
                f"mapping_mode must be 'dram' or 'dftl', got {mapping_mode!r}"
            )
        if fgc_penalty < 1.0:
            raise ValueError(f"fgc_penalty must be >= 1.0, got {fgc_penalty}")
        for name, value in (
            ("max_read_retries", max_read_retries),
            ("max_program_retries", max_program_retries),
            ("max_erase_retries", max_erase_retries),
        ):
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if checkpoint_interval_pages is not None and checkpoint_interval_pages < 1:
            raise ValueError(
                f"checkpoint_interval_pages must be >= 1, got {checkpoint_interval_pages}"
            )
        self.nand = nand
        self.space = space
        self.geometry = nand.geometry
        #: Mapping architecture: ``dram`` keeps the full page map in
        #: controller DRAM (the historical model); ``dftl`` stores
        #: translation pages on NAND behind an LRU cached mapping table
        #: with a configurable DRAM budget (1/64 of the full map by
        #: default) and a third write frontier for translation blocks.
        self.mapping_mode = mapping_mode
        self._dftl = mapping_mode == "dftl"
        if self._dftl:
            full_map_bytes = space.user_pages * 8
            budget = (
                cmt_budget_bytes
                if cmt_budget_bytes is not None
                else full_map_bytes // 64
            )
            self.cmt_budget_bytes = budget
            capacity = max(1, budget // nand.geometry.page_size)
            self.page_map: PageMap = CachedPageMap(
                nand.geometry, space.user_pages, capacity
            )
        else:
            self.cmt_budget_bytes = None
            self.page_map = PageMap(nand.geometry, space.user_pages)
        #: Write streams: user + GC frontiers, plus the translation
        #: frontier in dftl mode (sizing floor for the free pool).
        self._streams = 3 if self._dftl else 2
        self.victim_selector = victim_selector or GreedySelector()
        self.fgc_watermark = fgc_watermark
        self.fgc_penalty = fgc_penalty
        self.wear_leveler = wear_leveler
        self.max_read_retries = max_read_retries
        self.max_program_retries = max_program_retries
        self.max_erase_retries = max_erase_retries
        self.stats = FtlStats()

        #: Runtime-retired blocks (grown bad + worn out); excluded from
        #: every allocation and victim-selection path.
        self.retired_blocks: Set[int] = set()
        #: Metrics registry -- the single source of truth for event-driven
        #: series like the degraded-OP timeline.  A host system shares one
        #: registry across components; a standalone FTL owns a private one.
        self.registry = registry if registry is not None else MetricsRegistry()
        self._op_series = self.registry.series("ftl.effective_op_pages.events")
        #: Sim-time tracer and decision-audit log; no-op defaults are
        #: replaced by :meth:`repro.obs.Observability.install`.
        self.tracer = NULL_TRACER
        self.audit = DISABLED_AUDIT
        #: Terminal state: spare capacity exhausted, writes refused.
        self.read_only = False

        self._op_counter = 0
        self._clock = clock or self._default_clock
        #: Monotonic write-sequence stamp persisted in each programmed
        #: page's OOB slot (power-loss recovery's "newest copy wins"
        #: arbiter).  Consumed only by *successful* programs, so every
        #: surviving stamp is unique and restoring ``max + 1`` after a
        #: crash keeps monotonicity across power cycles.
        self._write_seq = 0

        #: Durable metadata (repro.ftl.metastore): write a mapping
        #: checkpoint every N host pages (None = never -- recovery falls
        #: back to the full OOB scan), and journal unmap tombstones so
        #: TRIMs survive power loss.  Tombstones burn sequence numbers
        #: from the same counter as programs, giving programs and unmaps
        #: one total order that recovery replays newest-stamp-wins.
        self.checkpoint_interval_pages = checkpoint_interval_pages
        self.journal_unmaps = journal_unmaps
        #: Checkpoint scheduling: an explicit policy object wins;
        #: otherwise a set interval builds the classic fixed-interval
        #: policy (bit-identical to the historical inline check), and
        #: None disables checkpointing entirely.
        if checkpoint_policy is not None:
            self._ckpt_policy: Optional[CheckpointPolicy] = checkpoint_policy
        elif checkpoint_interval_pages is not None:
            self._ckpt_policy = IntervalCheckpointPolicy(checkpoint_interval_pages)
        else:
            self._ckpt_policy = None
        #: Generation stamp of the last checkpoint written (monotonic
        #: across power cycles: recovery restores the max generation seen
        #: in the metadata log, torn records included).
        self._ckpt_generation = 0
        self._pages_at_last_ckpt = 0

        #: LPNs the host reported as soon-to-be-invalidated (paper's SIP list).
        self.sip_lpns: Set[int] = set()

        #: Hot-path indexes (PERFORMANCE.md): candidate blocks ordered by
        #: valid count, and per-block SIP-overlap counters.  None when the
        #: process runs on the reference scan paths (repro.perf).
        if perf.hotpath_indexing_enabled():
            self.victim_index: Optional[ValidCountIndex] = ValidCountIndex()
            self.sip_index: Optional[SipOverlapIndex] = SipOverlapIndex(
                self.geometry.total_blocks
            )
            self.page_map.set_valid_observer(
                self.victim_index.make_fused_observer(self.sip_index)
            )
        else:
            self.victim_index = None
            self.sip_index = None

        # Cached int for the per-write frontier/address math below.
        self._ppb = self.geometry.pages_per_block
        #: Time each block was closed (frontier filled); for cost-benefit age.
        self._close_time = np.zeros(self.geometry.total_blocks, dtype=np.int64)
        #: True for blocks that are in use and completely programmed.
        self._closed = np.zeros(self.geometry.total_blocks, dtype=bool)
        #: Erases since the last wear-levelling check.
        self._erases_since_wl_check = 0

        #: Live data-integrity subsystem (repro.nand.reliability +
        #: repro.ftl.scrub).  When armed, the NAND retention clock runs
        #: off this FTL's clock, every read consults the deterministic
        #: ECC escalation ladder, and the scrubber nominates at-risk
        #: blocks during idle windows.  When off, the whole path is a
        #: single ``is None`` check -- bit-identical to the historical
        #: model.
        self.reliability = reliability
        #: Read-retry level histogram {level: successful reads}; level
        #: ``len(retry_rber_factors)`` means the soft decoder.  Kept off
        #: FtlStats (plain-int snapshot/delta contract) and surfaced in
        #: RunMetrics by the collector.
        self.ecc_retry_histogram: dict = {}
        if reliability is not None:
            self._rel_model: Optional[ReliabilityModel] = ReliabilityModel(
                reliability
            )
            # Modelled retention seconds per simulated nanosecond.
            self._rel_accel_per_ns = reliability.retention_accel / 1e9
            nand.set_reliability_clock(self._clock)
            self._scrubber: Optional[RefreshScrubber] = (
                RefreshScrubber(reliability) if reliability.scrub else None
            )
        else:
            self._rel_model = None
            self._rel_accel_per_ns = 0.0
            self._scrubber = None
        #: Per-block memo of ladder verdicts: block -> [outcome,
        #: expiry_ns, reads-left-in-disturb-bucket].  See _ladder_outcome.
        self._ladder_memo: Dict[int, list] = {}

        if recovered is not None:
            self._install_recovered(recovered)
            return

        good = [
            block
            for block in range(self.geometry.total_blocks)
            if not nand.is_bad(block)
        ]
        if len(good) < fgc_watermark + self._streams:
            raise FtlError("not enough good blocks to operate")
        self.allocator = WearAwareAllocator(nand.endurance, initial_free=good)

        self._active_user_block = self._allocate_block()
        self._active_gc_block = self._allocate_block()
        self._active_trans_block: Optional[int] = (
            self._allocate_block() if self._dftl else None
        )

    def _install_recovered(self, recovered: "RecoveredFtlState") -> None:
        """Adopt the post-power-cut state reconstructed by the recovery
        scan (:func:`repro.ftl.recovery.recover_ftl`) instead of
        formatting a fresh device.

        Volatile host-side state (SIP list, block close times, stats,
        the op-counter clock) is deliberately *not* restored -- it lived
        in controller DRAM and died with the power rail.
        """
        pm = self.page_map
        pm.load_mapping(recovered.l2p)
        if self._dftl:
            if recovered.gtd is None:
                raise FtlError(
                    "dftl mapping mode requires a recovered GTD "
                    "(recovery scan ran without translation-stamp support?)"
                )
            pm.load_gtd(recovered.gtd)
        self._write_seq = recovered.write_seq
        self._ckpt_generation = recovered.checkpoint_generation
        self.retired_blocks = set(recovered.retired_blocks)
        self.allocator = WearAwareAllocator(
            self.nand.endurance, initial_free=recovered.free_blocks
        )
        for block in recovered.closed_blocks:
            self._closed[block] = True
            if self.victim_index is not None:
                self.victim_index.track(block, pm.valid_count(block))
        self._active_user_block = (
            recovered.active_user_block
            if recovered.active_user_block is not None
            else self._allocate_block()
        )
        self._active_gc_block = (
            recovered.active_gc_block
            if recovered.active_gc_block is not None
            else self._allocate_block()
        )
        if self._dftl:
            self._active_trans_block = (
                recovered.active_trans_block
                if recovered.active_trans_block is not None
                else self._allocate_block()
            )
        else:
            self._active_trans_block = None
        if self.retired_blocks:
            # Re-seed the degraded-OP timeline so post-recovery metrics
            # start from the surviving capacity, not the nominal one.
            self.stats.blocks_retired = len(self.retired_blocks)
            self._op_series.append(self._clock(), self.effective_op_pages())
        min_good = self.fgc_watermark + self._streams
        if self.effective_op_pages() <= 0 or self.nand.good_blocks() < min_good:
            self._enter_read_only()

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------
    def _default_clock(self) -> int:
        return self._op_counter

    def _on_valid_delta(self, block: int, lpn: int, delta: int) -> None:
        """Unfused PageMap observer (kept for tests/subclasses; the
        constructor installs the fused closure from
        :meth:`ValidCountIndex.make_fused_observer` instead)."""
        index = self.victim_index
        if index is not None:
            index.adjust_if_tracked(block, delta)
        sip = self.sip_index
        if sip is not None:
            sip.on_valid_delta(block, lpn, delta)

    def _allocate_block(self) -> int:
        block = self.allocator.allocate()
        if block is None:
            if self.retired_blocks:
                self._enter_read_only()
                raise DeviceReadOnlyError(
                    "free-block pool exhausted after "
                    f"{len(self.retired_blocks)} block retirements; device is read-only"
                )
            raise FtlError("free-block pool exhausted (GC failed to keep up)")
        return block

    @property
    def active_user_block(self) -> int:
        return self._active_user_block

    @property
    def active_gc_block(self) -> int:
        return self._active_gc_block

    @property
    def active_trans_block(self) -> Optional[int]:
        """Translation-block write frontier (None in dram mode)."""
        return self._active_trans_block

    # ------------------------------------------------------------------
    # Capacity queries (the paper's Cfree / Cused)
    # ------------------------------------------------------------------
    def free_pool_blocks(self) -> int:
        return len(self.allocator)

    def free_pages(self) -> int:
        """Pages writable without any GC: pool blocks + open frontiers."""
        ppb = self.geometry.pages_per_block
        frontier_user = ppb - self.nand.next_programmable_page(self._active_user_block)
        frontier_gc = ppb - self.nand.next_programmable_page(self._active_gc_block)
        frontier_trans = 0
        if self._active_trans_block is not None:
            frontier_trans = ppb - self.nand.next_programmable_page(
                self._active_trans_block
            )
        return len(self.allocator) * ppb + frontier_user + frontier_gc + frontier_trans

    def free_bytes(self) -> int:
        """The paper's ``Cfree`` in bytes."""
        return self.free_pages() * self.geometry.page_size

    def used_pages(self) -> int:
        """Live logical pages (the paper's ``Cused`` in pages)."""
        return self.page_map.mapped_count

    def reclaimable_garbage_pages(self) -> int:
        """Invalid pages sitting in closed blocks (BGC's raw material)."""
        closed = np.flatnonzero(self._closed)
        if len(closed) == 0:
            return 0
        ppb = self.geometry.pages_per_block
        valid = self.page_map.valid_counts()[closed]
        return int((ppb - valid).sum())

    # ------------------------------------------------------------------
    # Degraded capacity (fault recovery)
    # ------------------------------------------------------------------
    def retired_pages(self) -> int:
        """Physical pages lost to runtime block retirement."""
        return len(self.retired_blocks) * self.geometry.pages_per_block

    def effective_op_pages(self) -> int:
        """``C_OP`` net of retired capacity -- shrinks as blocks die."""
        return self.space.effective_op_pages(self.retired_pages())

    @property
    def op_timeline(self) -> List[Tuple[int, int]]:
        """``(clock_ns, effective_op_pages)`` after each retirement.

        Derived from the ``ftl.effective_op_pages.events`` registry
        series -- the registry is the single source of truth; this
        property keeps the historical RunMetrics shape.
        """
        return [(int(t), int(v)) for t, v in self._op_series.points]

    def _enter_read_only(self) -> None:
        self.read_only = True
        if self.tracer.enabled:
            self.tracer.emit(
                "ftl",
                "ftl.read_only",
                retired_blocks=len(self.retired_blocks),
            )

    def _record_retirement(self, block: int) -> None:
        """Account one grown-bad/worn-out block and degrade capacity.

        Every retired block comes out of the effective over-provisioning
        (the host-visible capacity cannot shrink); once the OP is gone,
        or the spare pool can no longer sustain GC, the device goes
        read-only -- the graceful terminal state.
        """
        if block in self.retired_blocks:
            return
        self.retired_blocks.add(block)
        self._closed[block] = False
        if self.victim_index is not None:
            self.victim_index.untrack(block)
        self.stats.blocks_retired += 1
        effective_op = self.effective_op_pages()
        self._op_series.append(self._clock(), effective_op)
        if self.tracer.enabled:
            self.tracer.emit(
                "ftl",
                "ftl.block_retired",
                block=block,
                effective_op_pages=effective_op,
            )
        min_good = self.fgc_watermark + self._streams
        if self.effective_op_pages() <= 0 or self.nand.good_blocks() < min_good:
            self._enter_read_only()

    # ------------------------------------------------------------------
    # Fault-recovery primitives
    # ------------------------------------------------------------------
    def _note_fault(
        self, kind: str, block: int, page: int, resolution: str, retries: int = 0
    ) -> None:
        """Audit one fault-recovery episode (injection + recovery path)."""
        if self.audit.enabled:
            self.audit.record_fault(
                FaultRecord(
                    t_ns=self._clock(),
                    kind=kind,
                    block=block,
                    page=page,
                    resolution=resolution,
                    retries=retries,
                )
            )
        if self.tracer.enabled:
            self.tracer.emit(
                "faults",
                f"fault.{kind}",
                block=block,
                page=page,
                resolution=resolution,
                retries=retries,
            )

    def _ladder_outcome(self, block: int):
        """ECC escalation ladder verdict for a read of ``block`` now.

        Expected RBER is wear x retention age x disturb count; the model
        buckets all three, so repeated reads of a block in the same
        stress regime hit a cache.  Retention age uses the profile's
        acceleration factor (modelled seconds per simulated second) --
        accelerated profiles let a 30-second run cross the ECC cliff.

        A per-block memo keeps the steady-state cost to one dict probe:
        a verdict stays valid until the block's retention bucket rolls
        over (``expiry_ns``, from the stamp it was computed against) or
        its disturb bucket could advance (a countdown of reads), and is
        dropped outright on erase (``_erase_with_retry``), which changes
        all three stress inputs at once.  A stamp refreshed by a later
        program only shortens the true age, so holding the older verdict
        until the (earlier) expiry is conservative, never optimistic.
        """
        memo = self._ladder_memo
        entry = memo.get(block)
        if entry is not None and self._clock() < entry[1] and entry[2] > 0:
            entry[2] -= 1
            return entry[0]
        nand = self.nand
        stamp_ns = int(nand.last_program_ns[block])
        age_ns = self._clock() - stamp_ns
        if age_ns < 0:
            # Clock skew across power cycles (standalone op-counter
            # clocks restart at zero); treat as freshly programmed.
            age_ns = 0
        disturbs = (
            int(nand.read_disturb.read_counts[block])
            if nand.read_disturb is not None
            else 0
        )
        retention_s = age_ns * self._rel_accel_per_ns
        outcome = self._rel_model.read_outcome(
            int(nand.erase_counts[block]), retention_s, disturbs
        )
        bucket_s = 1 << ReliabilityModel._RET_SHIFT
        next_boundary_s = (int(retention_s) // bucket_s + 1) * bucket_s
        expiry_ns = stamp_ns + int(next_boundary_s / self._rel_accel_per_ns)
        reads_left = (1 << ReliabilityModel._DIST_SHIFT) - (
            disturbs & ((1 << ReliabilityModel._DIST_SHIFT) - 1)
        )
        memo[block] = [outcome, expiry_ns, reads_left]
        return outcome

    def _read_with_retry(self, block: int, page: int) -> Tuple[int, bool]:
        """Read one physical page, retrying uncorrectable reads.

        Returns ``(latency_ns, ok)``; ``ok`` is False when the data is
        lost even after the retry budget (counted as an uncorrectable
        read -- the host sees an I/O error for that page).

        With a reliability profile armed, the deterministic ECC
        escalation ladder runs first: within-strength reads succeed at
        base latency, stressed reads pay priced retry levels or the soft
        decoder, and beyond-cliff reads are UECCs that feed the same
        data-lost machinery the fault injector uses.
        """
        extra_ns = 0
        if self._rel_model is not None:
            outcome = self._ladder_outcome(block)
            extra_ns = outcome.extra_ns
            if not outcome.ok:
                # UECC: the whole priced ladder (hard retry levels plus
                # the soft decoder) ran and the data is still beyond the
                # code.  Callers handle it like any other lost read --
                # GC migrations unmap, host reads surface EIO.
                self.stats.uecc_count += 1
                self.stats.uncorrectable_reads += 1
                if self.audit.enabled or self.tracer.enabled:
                    self._note_fault("read", block, page, "uecc", outcome.level)
                try:
                    base_ns = self.nand.read_page(block, page)
                except UncorrectableReadError as fault:
                    base_ns = fault.latency_ns
                return base_ns + extra_ns, False
            if outcome.level == 0:
                self.stats.ecc_fast_reads += 1
            else:
                self.stats.ecc_retry_reads += 1
                hist = self.ecc_retry_histogram
                hist[outcome.level] = hist.get(outcome.level, 0) + 1
                if outcome.soft:
                    self.stats.ecc_soft_decodes += 1
                if self.audit.enabled or self.tracer.enabled:
                    self._note_fault(
                        "read",
                        block,
                        page,
                        "ecc-soft-decode" if outcome.soft else "ecc-retry",
                        outcome.level,
                    )
        try:
            return self.nand.read_page(block, page) + extra_ns, True
        except UncorrectableReadError as fault:
            latency = fault.latency_ns + extra_ns
        attempts = 0
        for _ in range(self.max_read_retries):
            attempts += 1
            self.stats.read_retries += 1
            try:
                latency += self.nand.reread_page(block, page)
            except UncorrectableReadError as fault:
                latency += fault.latency_ns
                continue
            if self.audit.enabled or self.tracer.enabled:
                self._note_fault("read", block, page, "read-retry", attempts)
            return latency, True
        self.stats.uncorrectable_reads += 1
        if self.audit.enabled or self.tracer.enabled:
            self._note_fault("read", block, page, "data-lost", attempts)
        return latency, False

    def _program_frontier(self, user: bool, lpn: int) -> Tuple[int, int, int]:
        """Program the next frontier page of the given stream, recovering
        from injected program failures.

        On a status-fail the spoiled block is retired (its live pages
        relocated first) and the program is retried on a fresh frontier.
        The successful program stamps ``(lpn, seq)`` into the page's OOB;
        failed attempts leave their consumed page unstamped (torn-like)
        and do not burn a sequence number.  Returns
        ``(block, page, latency_ns)`` of the successful program.
        """
        latency = 0
        for _ in range(self.max_program_retries + 1):
            block, page, extra = self._frontier_slot(user=user)
            latency += extra
            try:
                latency += self.nand.program_page(block, page, lpn, self._write_seq)
                self._write_seq += 1
                return block, page, latency
            except ProgramFailError as fault:
                latency += fault.latency_ns
                self.stats.program_faults += 1
                latency += self._retire_failed_frontier(block, user)
        raise FtlError(
            f"program retry budget ({self.max_program_retries}) exhausted"
        )

    def _retire_failed_frontier(self, failed_block: int, user: bool) -> int:
        """Retire the active block that just failed a program.

        A fresh frontier replaces it first, then the failed block's live
        pages are rewritten onto that frontier (reads recover via
        read-retry; pages lost anyway are unmapped and counted).  Returns
        the NAND latency spent on the relocation.
        """
        replacement = self._allocate_block()
        if user:
            self._active_user_block = replacement
        else:
            self._active_gc_block = replacement

        latency = 0
        relocated_lpns = list(self.page_map.valid_lpns_in_block(failed_block))
        for offset, lpn in relocated_lpns:
            read_ns, ok = self._read_with_retry(failed_block, offset)
            latency += read_ns
            self.stats.gc_pages_read += 1
            if not ok:
                # Data unrecoverable: drop the mapping; a later host read
                # of this LPN returns an error (modelled as an unmapped
                # read) rather than silently stale data.  Tombstoned so
                # the loss also survives a crash.
                latency += self._unmap_lost(lpn)
                continue
            programmed = False
            for _ in range(self.max_program_retries + 1):
                block, page, extra = self._frontier_slot(user=user)
                latency += extra
                try:
                    latency += self.nand.program_page(
                        block, page, lpn, self._write_seq
                    )
                    self._write_seq += 1
                except ProgramFailError as fault:
                    # Nested failure: the spoiled page becomes garbage;
                    # keep trying the next slot without recursive
                    # retirement so recovery terminates.
                    latency += fault.latency_ns
                    self.stats.program_faults += 1
                    continue
                self.page_map.remap(lpn, self.page_map.ppn(block, page))
                self.stats.gc_pages_migrated += 1
                programmed = True
                break
            if not programmed:
                raise FtlError(
                    "program retry budget exhausted while retiring "
                    f"block {failed_block}"
                )
        self.page_map.clear_block(failed_block)
        self.nand.mark_bad(failed_block)
        self._record_retirement(failed_block)
        if self.audit.enabled or self.tracer.enabled:
            self._note_fault("program", failed_block, -1, "block-retired")
        if self._dftl:
            # Every relocated (or lost) LPN dirtied its translation page;
            # deferred past the relocation loop like the GC paths.
            ept = self.page_map.entries_per_tpage
            touched = sorted(
                {lpn // ept for _, lpn in relocated_lpns}
            )
            for tvpn in touched:
                latency += self._mapping_access(tvpn, dirty=True)
        return latency

    def _erase_with_retry(self, block: int) -> Tuple[int, bool]:
        """Erase ``block`` with bounded retries.

        Returns ``(latency_ns, ok)``; ``ok`` False means every attempt
        failed and the block must be retired as grown-bad.
        """
        # The erase re-bases the retention clock, resets the disturb
        # counter and bumps the P/E count: any memoised ladder verdict
        # for the block is stale either way.
        self._ladder_memo.pop(block, None)
        latency = 0
        for _ in range(self.max_erase_retries + 1):
            try:
                return latency + self.nand.erase_block(block), True
            except EraseFailError as fault:
                latency += fault.latency_ns
                self.stats.erase_faults += 1
        return latency, False

    # ------------------------------------------------------------------
    # Host datapath
    # ------------------------------------------------------------------
    def host_write_page(self, lpn: int) -> int:
        """Write one logical page; returns total NAND latency (ns).

        Runs foreground GC first when the free pool is at the watermark;
        the returned latency then includes the full stall.

        Raises:
            DeviceReadOnlyError: the device has exhausted its spare
                capacity (terminal fault-degradation state).
        """
        if self.read_only:
            raise DeviceReadOnlyError(
                "write rejected: device is read-only "
                f"({len(self.retired_blocks)} blocks retired)"
            )
        latency = 0
        if self.needs_foreground_gc():
            latency += self._run_foreground_gc()
        latency += self._program_user_page(lpn)
        if self._ckpt_policy is not None:
            latency += self._maybe_checkpoint()
        latency += self.nand.timing.transfer_ns_per_page
        return latency

    @property
    def supports_batched_writes(self) -> bool:
        """True when :meth:`host_write_extent` is legal.

        Requires the indexed data plane (victim index installed).  Fault
        injection no longer disables it wholesale: the NAND pre-draws the
        injector's program stream per chunk and raises
        :class:`~repro.nand.errors.BatchFaultPending` (stream restored)
        when a fault lies inside, so only the chunks that actually fault
        fall back to the per-page loop.
        """
        return self.victim_index is not None

    def host_write_extent(self, lpn: int, count: int) -> int:
        """Batched :meth:`host_write_page` over a contiguous LPN extent.

        Bit-identical to ``sum(host_write_page(lpn + i) for i in
        range(count))``: foreground-GC watermark checks, frontier rolls,
        and the op-counter clock happen at exactly the per-page loop's
        logical points.  The extent is consumed in frontier-sized chunks;
        a chunk that rolls the frontier is one page long so the watermark
        is re-checked before the next page, just as the per-page loop
        re-checks it.  Index deltas are applied in aggregate (the
        per-page observer is bypassed): intermediate heap entries the
        per-page path would push are dead on arrival — only the final
        ``(count, generation)`` pair is live — so victim selection is
        unchanged.

        Only legal when :attr:`supports_batched_writes` is true.
        """
        nand = self.nand
        page_map = self.page_map
        vindex = self.victim_index
        sip = self.sip_index
        ppb = self._ppb
        latency = 0
        pos = 0
        while pos < count:
            # Checked per iteration, not just at entry: a mid-extent
            # block retirement can flip the flag, and the per-page loop
            # would reject the very next page.
            if self.read_only:
                raise DeviceReadOnlyError(
                    "write rejected: device is read-only "
                    f"({len(self.retired_blocks)} blocks retired)"
                )
            if self.needs_foreground_gc():
                latency += self._run_foreground_gc()
            block = self._active_user_block
            start = int(nand.program_ptr[block])
            if start >= ppb:
                # Frontier roll: take the per-page helper for exactly one
                # page -- it replicates the per-page order (clock tick,
                # close, allocate, program) and the GC watermark is
                # re-checked before the page after it.
                latency += self._program_user_page(lpn + pos)
                pos += 1
                continue
            chunk = min(count - pos, ppb - start)
            first = lpn + pos
            try:
                program_ns = nand.program_pages_batch(
                    block, start, chunk, first_lpn=first, first_seq=self._write_seq
                )
            except BatchFaultPending:
                # An injected program fault lies somewhere in this chunk
                # (no NAND state was touched; the injector's stream is
                # restored).  Fall back exactly one page through the
                # per-page helper: it replays the same draw, and when it
                # is the failing one, runs the full retirement/retry
                # recovery -- so a faulted run stays bit-identical to the
                # per-page loop while clean chunks keep batching.
                latency += self._program_user_page(lpn + pos)
                pos += 1
                continue
            self._write_seq += chunk
            self._op_counter += chunk
            latency += program_ns
            old_ppns = page_map.remap_extent(first, chunk, block * ppb + start)
            if vindex is not None:
                # The old PPNs of a contiguous extent were themselves
                # written as runs, so group consecutive same-block PPNs
                # and adjust once per run (intermediate heap entries the
                # per-page observer would push are dead on arrival, so
                # aggregation is selection-equivalent).
                adjust = vindex.adjust_if_tracked
                prev = -1
                run = 0
                for ppn in old_ppns:
                    if ppn == UNMAPPED:
                        continue
                    b = ppn // ppb
                    if b != prev:
                        if run:
                            adjust(prev, -run)
                        prev = b
                        run = 1
                    else:
                        run += 1
                if run:
                    adjust(prev, -run)
            if sip is not None and sip.lpns:
                sip_set = sip.lpns
                hits = [i for i in range(chunk) if (first + i) in sip_set]
                if hits:
                    hit_old = [
                        old_ppns[i] // ppb
                        for i in hits
                        if old_ppns[i] != UNMAPPED
                    ]
                    sip.remap_batch(block, len(hits), hit_old)
            self.stats.host_pages_written += chunk
            if self._dftl:
                # One CMT touch per translation page the chunk spans (the
                # per-page loop would touch each page's tvpn; duplicates
                # within a chunk are hits and cost nothing).
                ept = self.page_map.entries_per_tpage
                for tvpn in range(first // ept, (first + chunk - 1) // ept + 1):
                    latency += self._mapping_access(tvpn, dirty=True)
            pos += chunk
        if self._ckpt_policy is not None:
            # Once per extent, not per chunk: the checkpoint horizon may
            # land a few pages later than the per-page plane's would, but
            # the request's total latency is identical and recovery only
            # needs *a* recent horizon, not a page-exact one.
            latency += self._maybe_checkpoint()
        return latency + count * self.nand.timing.transfer_ns_per_page

    def host_read_page(self, lpn: int) -> int:
        """Read one logical page; returns NAND latency (ns).

        Reads of never-written pages return zeroes at transfer cost only
        (no flash access), like a real drive.  In dftl mode the lookup
        first consults the cached mapping table; a miss pays a real NAND
        read of the translation page.
        """
        latency = 0
        if self._dftl:
            latency += self._mapping_access(
                self.page_map.tvpn_of(lpn), dirty=False
            )
        ppn = self.page_map.lookup(lpn)
        self.stats.host_pages_read += 1
        if ppn is None:
            return latency + self.nand.timing.transfer_ns_per_page
        read_ns, _ok = self._read_with_retry(
            self.page_map.block_of(ppn), self.page_map.page_of(ppn)
        )
        return latency + read_ns + self.nand.timing.transfer_ns_per_page

    def trim(self, lpns: Iterable[int]) -> int:
        """TRIM logical pages; returns the journaling latency (ns).

        TRIM creates garbage without writes -- file deletion in the
        Postmark/Filebench workloads reaches the FTL through here.  With
        :attr:`journal_unmaps` on (the default) each freed LPN is
        tombstoned in the durable unmap journal so the discard survives
        power loss; the returned latency is the tombstone record's
        metadata-page program time (zero when nothing was mapped).
        """
        freed = self.page_map.unmap_many(lpns)
        self.stats.pages_trimmed += len(freed)
        latency = self._journal_tombstones(freed)
        if self._dftl and freed:
            ept = self.page_map.entries_per_tpage
            for tvpn in sorted({lpn // ept for lpn in freed}):
                latency += self._mapping_access(tvpn, dirty=True)
        if self.tracer.enabled and freed:
            self.tracer.emit(
                "ftl", "ftl.trim", pages=len(freed), journal_ns=latency
            )
        return latency

    # ------------------------------------------------------------------
    # Durable metadata (checkpoints + unmap journal)
    # ------------------------------------------------------------------
    def _meta_program(self, pages: int) -> int:
        """Physically program ``pages`` metadata pages; returns ns latency.

        The logical append (:meth:`MetaLog.append <repro.ftl.metastore.MetaLog.append>`)
        already happened; this routes its pages through the reserved-block
        wear/fault model (:meth:`~repro.nand.array.NandArray.meta_program`),
        so checkpoint and tombstone traffic ages the metadata ring, pays
        for its wrap-around erases and program-fail retries, and -- when
        every reserved block is retired -- drives the device read-only: a
        controller that cannot persist its mapping must stop accepting
        writes.
        """
        outcome = self.nand.meta_program(pages)
        stats = self.stats
        stats.meta_pages_written += outcome.pages_programmed
        stats.meta_block_erases += outcome.erases
        stats.meta_program_faults += outcome.program_faults
        stats.meta_erase_faults += outcome.erase_faults
        stats.meta_blocks_retired += outcome.blocks_retired
        if self.tracer.enabled and (
            outcome.program_faults or outcome.erase_faults or outcome.blocks_retired
        ):
            self.tracer.emit(
                "ftl",
                "ftl.meta_fault",
                program_faults=outcome.program_faults,
                erase_faults=outcome.erase_faults,
                blocks_retired=outcome.blocks_retired,
                live_blocks=self.nand.meta_region.live_blocks(),
            )
        if outcome.exhausted and not self.read_only:
            if outcome.pages_programmed < pages:
                # The logical append preceded this program, so the
                # record's tail never reached NAND: mark it torn, or
                # recovery would trust a checkpoint generation that was
                # never durably complete.  The previous complete
                # generation (kept by compaction) takes over.
                self.nand.meta.tear_last(keep_pages=outcome.pages_programmed)
            self._enter_read_only()
        return outcome.latency_ns

    def _journal_tombstones(self, lpns: List[int]) -> int:
        """Durably journal unmap tombstones for ``lpns``; returns the
        metadata program latency (ns).

        Each tombstone burns one stamp from the shared write-sequence
        counter, so it outranks every surviving pre-trim copy of its LPN
        and is itself outranked by any later re-write -- exactly the
        newest-stamp-wins order the recovery merge replays.
        """
        if not self.journal_unmaps or not lpns:
            return 0
        first = self._write_seq
        self._write_seq += len(lpns)
        payload = build_tombstones(lpns, range(first, first + len(lpns)))
        record = self.nand.meta.append(KIND_UNMAP, payload)
        self.stats.tombstones_journaled += len(lpns)
        return self._meta_program(record.pages)

    def _unmap_lost(self, lpn: int) -> int:
        """Drop the mapping of an unrecoverable page, durably.

        GC data-loss paths must tombstone the unmap like a TRIM: the
        lost LPN's stale copies are still stamped on NAND, and without a
        durable tombstone a post-crash recovery would resurrect data the
        live device already reported gone.  Not counted in
        ``pages_trimmed`` (it is loss, not discard).
        """
        if self.page_map.unmap(lpn) is None:
            return 0
        return self._journal_tombstones([lpn])

    def _maybe_checkpoint(self) -> int:
        """Write a mapping checkpoint when the policy says so."""
        policy = self._ckpt_policy
        if policy is None or not policy.should_checkpoint(self):
            return 0
        return self.write_checkpoint(trigger=policy.trigger)

    def write_checkpoint(self, trigger: str = "manual") -> int:
        """Snapshot the mapping to the NAND metadata region.

        The record carries the full L2P table, the write-sequence
        *horizon* (every stamp and tombstone at or past it postdates this
        snapshot) and the per-block program pointers / erase counts that
        bound the recovery tail scan.  Older checkpoint generations and
        folded-in tombstones are compacted away, keeping the metadata
        region small.  Returns the metadata program latency (ns).
        """
        self._ckpt_generation += 1
        generation = self._ckpt_generation
        payload = build_checkpoint(
            generation,
            self._write_seq,
            self.page_map.l2p_snapshot(),
            self.nand.program_ptr,
            self.nand.endurance.erase_counts,
            self._ppb,
            gtd=self.page_map.gtd_snapshot() if self._dftl else None,
        )
        record = self.nand.meta.append(KIND_CHECKPOINT, payload, generation=generation)
        self.nand.meta.compact()
        self._pages_at_last_ckpt = self.stats.host_pages_written
        if self._ckpt_policy is not None:
            self._ckpt_policy.note_checkpoint(self)
        if self._dftl:
            # The checkpoint persists the whole directory, so cached
            # entries stop being writeback debt at this instant.
            self.page_map.cmt_flush_all()
        self.stats.checkpoints_written += 1
        latency = self._meta_program(record.pages)
        if self.audit.enabled:
            self.audit.record_checkpoint(
                CheckpointRecord(
                    t_ns=self._clock(),
                    generation=generation,
                    meta_pages=record.pages,
                    horizon_seq=self._write_seq,
                    trigger=trigger,
                )
            )
        if self.tracer.enabled:
            self.tracer.emit(
                "ftl",
                "ftl.checkpoint",
                generation=generation,
                meta_pages=record.pages,
                horizon_seq=self._write_seq,
                trigger=trigger,
            )
        return latency

    def _program_user_page(self, lpn: int) -> int:
        self._op_counter += 1
        block, page, latency = self._program_frontier(user=True, lpn=lpn)
        self.page_map.remap(lpn, block * self._ppb + page)
        self.stats.host_pages_written += 1
        if self._dftl:
            latency += self._mapping_access(
                self.page_map.tvpn_of(lpn), dirty=True
            )
        return latency

    def _frontier_slot(self, user: bool) -> Tuple[int, int, int]:
        """Return (block, page, extra_latency) for the next frontier page,
        rolling to a fresh free block when the current frontier is full.

        Reads the NAND's ``program_ptr`` vector directly: the active
        block is FTL-owned, so re-validating its address through
        :meth:`NandArray.next_programmable_page` per write is pure
        overhead."""
        block = self._active_user_block if user else self._active_gc_block
        page = int(self.nand.program_ptr[block])
        extra = 0
        if page >= self._ppb:
            self._close_block(block)
            new_block = self._allocate_block()
            if user:
                self._active_user_block = new_block
            else:
                self._active_gc_block = new_block
            block, page = new_block, 0
        return block, page, extra

    def _close_block(self, block: int) -> None:
        self._closed[block] = True
        self._close_time[block] = self._clock()
        if self.victim_index is not None:
            self.victim_index.track(block, self.page_map.valid_count(block))

    # ------------------------------------------------------------------
    # Translation tier (dftl mapping mode)
    # ------------------------------------------------------------------
    def translation_write_overhead(self) -> float:
        """Translation pages programmed per host page written.

        The JIT-GC demand predictor scales its Dbuf estimate by
        ``1 + overhead`` so collections provision for the mapping
        writeback traffic the buffered writes will induce.  Always 0.0
        in dram mode.
        """
        if not self._dftl or self.stats.host_pages_written == 0:
            return 0.0
        trans = self.stats.trans_pages_written + self.stats.trans_pages_migrated
        return trans / self.stats.host_pages_written

    def _mapping_access(self, tvpn: int, dirty: bool) -> int:
        """Consult the CMT for one translation page; returns ns latency.

        A hit is free (DRAM).  A miss pays a NAND read of the
        translation page's newest flushed copy (nothing if it was never
        flushed).  Making room may evict the LRU entry; a *dirty*
        eviction pays a NAND program of a fresh translation page through
        :meth:`_program_trans_page`.  Non-zero cost is recorded as a
        ``mapping-fault`` episode for tail attribution.
        """
        pm = self.page_map
        hit, evicted = pm.cmt_touch(tvpn, dirty)
        stats = self.stats
        latency = 0
        kind = "miss"
        if hit:
            stats.cmt_hits += 1
        else:
            stats.cmt_misses += 1
            ppn = pm.trans_ppn(tvpn)
            if ppn is not None:
                read_ns, _ok = self._read_with_retry(
                    ppn // self._ppb, ppn % self._ppb
                )
                latency += read_ns
                stats.trans_pages_read += 1
        pages = 1 if latency else 0
        for evicted_tvpn, was_dirty in evicted:
            if not was_dirty:
                continue
            stats.cmt_evictions += 1
            latency += self._program_trans_page(evicted_tvpn)
            pages += 1
            kind = "writeback"
        if latency and (self.audit.enabled or self.tracer.enabled):
            if self.audit.enabled:
                self.audit.record_mapping_fault(
                    MappingFaultRecord(
                        t_ns=self._clock(),
                        dur_ns=latency,
                        kind=kind,
                        pages=pages,
                    )
                )
            if self.tracer.enabled:
                self.tracer.emit(
                    "ftl",
                    "ftl.mapping_fault",
                    tvpn=tvpn,
                    kind=kind,
                    dur_ns=latency,
                )
        return latency

    def _trans_frontier_slot(self) -> Tuple[int, int, int]:
        """(block, page, extra_latency) of the next translation-frontier
        page, rolling to a fresh block when the frontier fills."""
        block = self._active_trans_block
        page = int(self.nand.program_ptr[block])
        if page >= self._ppb:
            self._close_block(block)
            block = self._allocate_block()
            self._active_trans_block = block
            page = 0
        return block, page, 0

    def _program_trans_page(self, tvpn: int, migrated: bool = False) -> int:
        """Program a fresh copy of translation page ``tvpn``.

        Stamps ``TRANS_LPN_BASE + tvpn`` in the page's OOB so recovery
        classifies the page into the translation namespace, and updates
        the GTD (invalidating the previous copy) through
        :meth:`CachedPageMap.remap_trans`.
        """
        latency = 0
        encoded = TRANS_LPN_BASE + tvpn
        for _ in range(self.max_program_retries + 1):
            block, page, extra = self._trans_frontier_slot()
            latency += extra
            try:
                latency += self.nand.program_page(
                    block, page, encoded, self._write_seq
                )
                self._write_seq += 1
            except ProgramFailError as fault:
                latency += fault.latency_ns
                self.stats.program_faults += 1
                latency += self._retire_failed_trans_frontier(block)
                continue
            self.page_map.remap_trans(tvpn, block * self._ppb + page)
            if migrated:
                self.stats.trans_pages_migrated += 1
            else:
                self.stats.trans_pages_written += 1
            return latency
        raise FtlError(
            f"program retry budget ({self.max_program_retries}) exhausted "
            "on the translation frontier"
        )

    def _retire_failed_trans_frontier(self, failed_block: int) -> int:
        """Retire the translation frontier after a program status-fail.

        Mirrors :meth:`_retire_failed_frontier`, with one difference:
        translation content is reconstructible from the authoritative
        mapping, so a live translation page whose read is lost is still
        reprogrammed -- nothing is unmapped, no data is lost.
        """
        replacement = self._allocate_block()
        self._active_trans_block = replacement
        latency = 0
        for offset, encoded in list(self.page_map.valid_lpns_in_block(failed_block)):
            tvpn = encoded - TRANS_LPN_BASE
            read_ns, _ok = self._read_with_retry(failed_block, offset)
            latency += read_ns
            self.stats.gc_pages_read += 1
            programmed = False
            for _ in range(self.max_program_retries + 1):
                block, page, extra = self._trans_frontier_slot()
                latency += extra
                try:
                    latency += self.nand.program_page(
                        block, page, encoded, self._write_seq
                    )
                    self._write_seq += 1
                except ProgramFailError as fault:
                    # Nested failure: the spoiled page becomes garbage;
                    # keep trying the next slot without recursive
                    # retirement so recovery terminates.
                    latency += fault.latency_ns
                    self.stats.program_faults += 1
                    continue
                self.page_map.remap_trans(tvpn, block * self._ppb + page)
                self.stats.trans_pages_migrated += 1
                programmed = True
                break
            if not programmed:
                raise FtlError(
                    "program retry budget exhausted while retiring "
                    f"translation block {failed_block}"
                )
        self.page_map.clear_block(failed_block)
        self.nand.mark_bad(failed_block)
        self._record_retirement(failed_block)
        if self.audit.enabled or self.tracer.enabled:
            self._note_fault("program", failed_block, -1, "block-retired")
        return latency

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def needs_foreground_gc(self) -> bool:
        """True when a host write must stall for GC first."""
        return len(self.allocator) <= self.fgc_watermark

    def gc_candidates(self) -> np.ndarray:
        """Closed in-use blocks eligible as GC victims."""
        return np.flatnonzero(self._closed)

    def has_victim(self) -> bool:
        """True if some candidate holds reclaimable garbage."""
        if self.victim_index is not None:
            # O(1) amortized: the global minimum decides -- some block
            # has garbage iff the fewest-valid block has garbage.
            top = self.victim_index.peek_min()
            return top is not None and top[0] < self.geometry.pages_per_block
        candidates = self.gc_candidates()
        if len(candidates) == 0:
            return False
        valid = self.page_map.valid_counts()[candidates]
        return bool((valid < self.geometry.pages_per_block).any())

    def collect_one_block(
        self,
        background: bool,
        forced_victim: Optional[int] = None,
        allow_full_victim: bool = False,
    ) -> int:
        """Collect a single victim block; returns the NAND latency (ns).

        Args:
            background: attribute the work to BGC (idle-time) rather than
                FGC (write-stall) counters.
            forced_victim: bypass the selector (wear levelling, refresh
                scrub).
            allow_full_victim: permit a victim with zero invalid pages.
                Reclaim-motivated GC treats that as device-full, but a
                refresh scrub legitimately relocates fully-valid blocks
                -- the point is re-basing the retention clock, not
                freeing space.

        Raises:
            OutOfSpaceError: no candidate has any garbage to reclaim.
        """
        if forced_victim is not None:
            victim: Optional[int] = forced_victim
        else:
            if self.victim_index is not None and getattr(
                self.victim_selector, "uses_valid_index", False
            ):
                # Fast path: candidates come straight off the index; no
                # candidate array, no O(blocks) age vector (the greedy
                # family never reads block_ages).
                decision = self.victim_selector.select(
                    None,
                    self.page_map,
                    block_ages=None,
                    sip_lpns=self.sip_lpns,
                    excluded_blocks=self.retired_blocks,
                    valid_index=self.victim_index,
                    sip_overlap=self.sip_index,
                )
            else:
                candidates = self.gc_candidates()
                decision = self.victim_selector.select(
                    candidates,
                    self.page_map,
                    block_ages=self._ages(),
                    sip_lpns=self.sip_lpns,
                    excluded_blocks=self.retired_blocks,
                )
            victim = decision.block
            if victim is not None:
                self.stats.victim_selections += 1
                if decision.filtered_by_sip > 0:
                    self.stats.victims_filtered_by_sip += 1
                if self.audit.enabled or self.tracer.enabled:
                    record = VictimRecord(
                        t_ns=self._clock(),
                        block=victim,
                        valid_pages=decision.valid_pages,
                        score=decision.score,
                        candidates_considered=decision.candidates_considered,
                        filtered_by_sip=decision.filtered_by_sip,
                        background=background,
                    )
                    self.audit.record_victim(record)
                    if self.tracer.enabled:
                        self.tracer.emit(
                            "ftl",
                            "victim.select",
                            block=victim,
                            valid_pages=decision.valid_pages,
                            score=decision.score,
                            filtered_by_sip=decision.filtered_by_sip,
                            background=background,
                        )
        if victim is None:
            raise OutOfSpaceError("no GC victim available")
        if (
            not allow_full_victim
            and self.page_map.valid_count(victim) >= self.geometry.pages_per_block
        ):
            raise OutOfSpaceError(
                f"best victim {victim} has no invalid pages; device is full of live data"
            )

        latency = self._migrate_and_erase(victim)
        if background:
            self.stats.bgc_blocks_collected += 1
            self.stats.bgc_time_ns += latency
        else:
            self.stats.fgc_blocks_collected += 1
            self.stats.fgc_time_ns += latency
        self._erases_since_wl_check += 1
        return latency

    def _migrate_and_erase(self, victim: int) -> int:
        batched = (
            self.victim_index is not None
            and self.nand.fault_injector is None
            and not (self._dftl and self.page_map.block_holds_trans(victim))
        )
        if batched and self._rel_model is not None:
            # The ladder verdict is block-granular (wear, retention age
            # and disturb count are per-block), so one check covers every
            # page of the victim: a fast-path block batches identically
            # to the off model, anything stressed takes the per-page
            # path so each migrated read pays its retry/soft/UECC toll.
            outcome = self._ladder_outcome(victim)
            if outcome.level == 0 and outcome.ok:
                self.stats.ecc_fast_reads += self.page_map.valid_count(victim)
            else:
                batched = False
        if batched:
            latency = self._migrate_valid_pages_batched(victim)
        else:
            # Per-page path: required under fault injection, and for
            # translation-holding victims (each page routes by its
            # OOB-stamp namespace; batched remap handles data LPNs only).
            latency = self._migrate_valid_pages_scan(victim)
        self.page_map.clear_block(victim)
        erase_ns, erased = self._erase_with_retry(victim)
        latency += erase_ns
        self._closed[victim] = False
        if self.victim_index is not None:
            self.victim_index.untrack(victim)
        if not erased:
            # Grown bad block: every erase attempt failed.
            self.nand.mark_bad(victim)
            self._record_retirement(victim)
            if self.audit.enabled or self.tracer.enabled:
                self._note_fault(
                    "erase", victim, -1, "block-retired", self.max_erase_retries
                )
            return latency
        self.stats.blocks_erased += 1
        if self.nand.is_bad(victim):
            # The erase itself pushed the block past its P/E rating.
            self._record_retirement(victim)
        else:
            self.allocator.release(victim)
        return latency

    def _migrate_valid_pages_scan(self, victim: int) -> int:
        """Per-page migration loop (executable specification).

        Also the only correct path under fault injection: every read and
        program must draw from the injector's RNG streams in per-page
        order, and any page may need retry/retirement recovery.
        """
        latency = 0
        victims_pages: List[Tuple[int, int]] = list(self.page_map.valid_lpns_in_block(victim))
        touched_tvpns: List[int] = []
        for offset, lpn in victims_pages:
            if lpn >= TRANS_LPN_BASE:
                # Translation page: relocate to the translation frontier.
                # Its content is reconstructible from the authoritative
                # mapping, so a lost read still reprograms -- no unmap.
                read_ns, _ok = self._read_with_retry(victim, offset)
                latency += read_ns
                self.stats.gc_pages_read += 1
                latency += self._program_trans_page(
                    lpn - TRANS_LPN_BASE, migrated=True
                )
                continue
            read_ns, ok = self._read_with_retry(victim, offset)
            latency += read_ns
            self.stats.gc_pages_read += 1
            if self._dftl:
                touched_tvpns.append(lpn // self.page_map.entries_per_tpage)
            if not ok:
                # Migration source unrecoverable: the logical page is
                # lost; unmap it instead of propagating garbage, and
                # tombstone the unmap so the loss survives a crash.
                latency += self._unmap_lost(lpn)
                continue
            block, page, program_ns = self._program_frontier(user=False, lpn=lpn)
            latency += program_ns
            self.page_map.remap(lpn, self.page_map.ppn(block, page))
            self.stats.gc_pages_migrated += 1
        if touched_tvpns:
            # Deferred past the loop: a dirty eviction's writeback
            # invalidates an old translation copy, which must not happen
            # while iterating the victim's own valid set.  (The victim's
            # translation copies, if any, were remapped away above.)
            for tvpn in sorted(set(touched_tvpns)):
                latency += self._mapping_access(tvpn, dirty=True)
        return latency

    def _migrate_valid_pages_batched(self, victim: int) -> int:
        """Array-batched migration: O(chunks) Python work, not O(pages).

        Bit-identical externally to :meth:`_migrate_valid_pages_scan`
        when no fault injector is attached (same NAND latencies, frontier
        rolls, counters and final index state):

        * valid pages are read/programmed in chunks bounded by the GC
          frontier's remaining capacity, rolling frontiers exactly where
          the per-page loop would;
        * the mapping moves via :meth:`PageMap.migrate_pages`, which
          bypasses the per-page observer, so the index deltas are applied
          in bulk here instead.  The ``ValidCountIndex`` intermediate
          decrements on the victim are skipped outright: nothing queries
          the index mid-migration, the victim is untracked right after,
          and destination frontiers are only tracked at close time --
          after their chunk remaps have landed.
        """
        pm = self.page_map
        offsets, lpns = pm.valid_pages_in_block(victim)
        n = len(offsets)
        if n == 0:
            return 0
        nand = self.nand
        ppb = self.geometry.pages_per_block
        sip = self.sip_index
        latency = 0
        pos = 0
        while pos < n:
            block = self._active_gc_block
            start = int(nand.program_ptr[block])
            if start >= ppb:
                self._close_block(block)
                block = self._allocate_block()
                self._active_gc_block = block
                start = 0
            chunk = min(n - pos, ppb - start)
            chunk_lpns = lpns[pos:pos + chunk]
            latency += nand.read_pages_batch(victim, chunk)
            latency += nand.program_pages_batch(
                block, start, chunk, lpns=chunk_lpns, first_seq=self._write_seq
            )
            self._write_seq += chunk
            pm.migrate_pages(victim, offsets[pos:pos + chunk], chunk_lpns, block, start)
            if sip is not None and sip.lpns:
                sip.migrate(
                    victim, block, len(sip.lpns.intersection(chunk_lpns.tolist()))
                )
            pos += chunk
        self.stats.gc_pages_read += n
        self.stats.gc_pages_migrated += n
        if self._dftl:
            # Batched victims are data-only (translation-holding blocks
            # take the scan path), so every migrated LPN dirties its
            # translation page; touches are deferred past the migration
            # like the scan path's.
            ept = self.page_map.entries_per_tpage
            for tvpn in np.unique(lpns // ept):
                latency += self._mapping_access(int(tvpn), dirty=True)
        return latency

    def _run_foreground_gc(self) -> int:
        """Collect until the pool is safely above the watermark."""
        self.stats.fgc_invocations += 1
        latency = 0
        while len(self.allocator) <= self.fgc_watermark:
            if (
                not self.retired_blocks
                and len(self.allocator) > 0
                and not self.has_victim()
            ):
                # Every closed block is momentarily all-valid (tiny
                # devices near 100% utilization can pack live data this
                # tightly), but frontier space remains and the write
                # being stalled will invalidate its own stale copy.
                # Proceed instead of declaring the device full -- only
                # an empty pool (or spare capacity lost to retirements,
                # handled below) is genuinely out of space.
                break
            try:
                latency += self.collect_one_block(background=False)
            except OutOfSpaceError:
                if self.retired_blocks:
                    # Not a misconfigured scenario: retirements consumed
                    # the spare capacity.  Degrade gracefully.
                    self._enter_read_only()
                    raise DeviceReadOnlyError(
                        "foreground GC found no reclaimable victim after "
                        f"{len(self.retired_blocks)} block retirements"
                    ) from None
                raise
        penalised = int(latency * self.fgc_penalty)
        self.stats.fgc_time_ns += penalised - latency
        return penalised

    def _ages(self) -> np.ndarray:
        """Per-block age proxy for cost-benefit selection."""
        now = self._clock()
        return np.maximum(0, now - self._close_time)

    # ------------------------------------------------------------------
    # Wear levelling
    # ------------------------------------------------------------------
    def maybe_wear_level(self, check_interval_erases: int = 256) -> int:
        """Run one static wear-levelling migration if the spread warrants.

        Called opportunistically by the device during idle periods.
        Returns the NAND latency spent (0 if nothing was done).
        """
        if self.wear_leveler is None:
            return 0
        if self._erases_since_wl_check < check_interval_erases:
            return 0
        self._erases_since_wl_check = 0
        in_use = self.gc_candidates()
        if not self.wear_leveler.needs_levelling(in_use):
            return 0
        cold = self.wear_leveler.pick_cold_block(in_use)
        if cold is None:
            return 0
        latency = self.collect_one_block(background=True, forced_victim=cold)
        self.stats.wl_blocks_collected += 1
        return latency

    def maybe_scrub(self) -> int:
        """Refresh one at-risk block if the scrubber nominates a victim.

        Called opportunistically by the device during idle windows (same
        seam as BGC/wear-levelling).  The relocation goes through
        :meth:`collect_one_block`, so its migrations and erase are
        charged into WAF, wear, and the GC counters like any background
        collection.  Returns the NAND latency spent (0 if nothing was
        done).
        """
        if self._scrubber is None or self.read_only:
            return 0
        if self.free_pool_blocks() <= self.fgc_watermark:
            # No headroom: a fully-valid refresh victim frees nothing
            # until its erase completes, so never scrub into the
            # foreground-GC watermark.
            return 0
        victim = self._scrubber.next_victim(self, self._clock())
        if victim is None:
            return 0
        pages_before = self.stats.gc_pages_migrated
        latency = self.collect_one_block(
            background=True, forced_victim=victim, allow_full_victim=True
        )
        self.stats.scrub_blocks_refreshed += 1
        self.stats.scrub_pages_migrated += (
            self.stats.gc_pages_migrated - pages_before
        )
        return latency

    def scrub_write_overhead(self) -> float:
        """Scrub-migrated pages per host page written.

        The JIT-GC demand predictor scales its Dbuf estimate by
        ``1 + overhead`` (alongside the translation-writeback term) so
        collections provision for refresh traffic too.  Always 0.0 with
        the scrubber off.
        """
        if self._scrubber is None or self.stats.host_pages_written == 0:
            return 0.0
        return self.stats.scrub_pages_migrated / self.stats.host_pages_written

    # ------------------------------------------------------------------
    # Host-interface extensions (paper Sec 3.1)
    # ------------------------------------------------------------------
    def set_sip_list(self, lpns: Iterable[int]) -> None:
        """Install the soon-to-be-invalidated page list from the host.

        With indexing enabled the per-block overlap counters are updated
        from the *delta* against the previous list (plus per-page
        validity events), so the SIP-filtered selector never recounts a
        candidate block's pages.
        """
        if self.sip_index is not None:
            self.sip_lpns = self.sip_index.replace(lpns, self.page_map)
        else:
            self.sip_lpns = set(lpns)

    def invariant_check(self) -> None:
        """Cross-structure consistency check used by tests."""
        self.page_map.invariant_check()
        if self.victim_index is not None:
            expected = {
                int(block): self.page_map.valid_count(int(block))
                for block in np.flatnonzero(self._closed)
            }
            if dict(self.victim_index.items()) != expected:
                raise AssertionError(
                    "valid-count index disagrees with the closed-block scan"
                )
        if self.sip_index is not None:
            recounted = np.zeros(self.geometry.total_blocks, dtype=np.int32)
            if self.sip_lpns:
                # Batched recount: one fancy-indexed lookup over the SIP
                # set instead of a per-LPN Python loop.
                np.add.at(recounted, self.page_map.mapped_blocks(self.sip_lpns), 1)
            if not np.array_equal(self.sip_index.snapshot(), recounted):
                raise AssertionError(
                    "SIP-overlap counters disagree with a full recount"
                )
        for block in range(self.geometry.total_blocks):
            in_pool = block in self.allocator
            is_active = block in (
                self._active_user_block,
                self._active_gc_block,
                self._active_trans_block,
            )
            if in_pool and (is_active or self._closed[block]):
                raise AssertionError(f"block {block} both free and in use")
            if in_pool and self.page_map.valid_count(block) != 0:
                raise AssertionError(f"free block {block} holds valid pages")
        for block in self.retired_blocks:
            if not self.nand.is_bad(block):
                raise AssertionError(f"retired block {block} not marked bad")
            if block in self.allocator or self._closed[block]:
                raise AssertionError(f"retired block {block} still in service")
            if self.page_map.valid_count(block) != 0:
                raise AssertionError(f"retired block {block} holds valid pages")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PageMappedFtl free={self.free_pool_blocks()}blk "
            f"used={self.used_pages()}p waf={self.stats.waf():.3f}>"
        )
