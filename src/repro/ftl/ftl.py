"""Page-mapped FTL with foreground and background garbage collection.

:class:`PageMappedFtl` is the firmware model: it owns the logical→physical
mapping, the free-block pool, the write frontiers and the GC engine.  It
is deliberately synchronous -- every operation returns its NAND latency in
nanoseconds -- and the SSD *device* model (:mod:`repro.ssd.device`) turns
those latencies into simulated time, queueing and idleness.

Write datapath (out-place update)::

    host write LPN
      -> frontier page in the active user block (allocate a new free
         block when the frontier fills)
      -> remap LPN, invalidating the previous physical page
    if the free pool is at the watermark  ->  FOREGROUND GC (stall)

GC datapath::

    pick victim (pluggable selector; the paper's SIP filter plugs here)
      -> migrate valid pages to the GC frontier
      -> erase victim, return it to the wear-ordered free pool

The separation of user and GC write frontiers gives the natural hot/cold
separation real FTLs rely on: migrated (cold-ish) data does not share
blocks with fresh (hot) data.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.ftl.mapping import PageMap
from repro.ftl.space import SpaceModel
from repro.ftl.stats import FtlStats
from repro.ftl.victim import GreedySelector, VictimSelector
from repro.ftl.wear import StaticWearLeveler, WearAwareAllocator
from repro.nand.array import BlockState, NandArray


class FtlError(RuntimeError):
    """Base class for FTL failures."""


class OutOfSpaceError(FtlError):
    """The FTL cannot find a victim with reclaimable garbage.

    Happens only when live data approaches the physical capacity; with
    standard OP ratios it indicates a misconfigured scenario.
    """


class PageMappedFtl:
    """Page-level FTL over a :class:`~repro.nand.array.NandArray`.

    Args:
        nand: the physical array.
        space: user/OP capacity split.
        victim_selector: GC victim policy (greedy by default; JIT-GC
            installs a :class:`~repro.ftl.victim.SipFilteredSelector`).
        fgc_watermark: free-pool size at or below which a host write must
            run foreground GC first.  Must be >= 2 so GC migrations always
            have a block to allocate.
        fgc_penalty: latency multiplier applied to foreground GC.  A
            foreground collection on a real drive costs more than the raw
            NAND operations: the request pipeline drains, mapping-table
            updates flush, and the host-interface queue stalls.  The
            multiplier models that overhead (4.0 by default; 1.0 gives
            the pure NAND-cost model).
        clock: zero-arg callable returning the current simulated time in
            nanoseconds (used for block-age bookkeeping); defaults to an
            operation counter when the FTL is used standalone.
        wear_leveler: optional static wear leveller.
    """

    def __init__(
        self,
        nand: NandArray,
        space: SpaceModel,
        victim_selector: Optional[VictimSelector] = None,
        fgc_watermark: int = 2,
        clock: Optional[Callable[[], int]] = None,
        wear_leveler: Optional[StaticWearLeveler] = None,
        fgc_penalty: float = 4.0,
    ) -> None:
        if space.geometry is not nand.geometry:
            raise ValueError("space model and NAND array use different geometries")
        if fgc_watermark < 2:
            raise ValueError(f"fgc_watermark must be >= 2, got {fgc_watermark}")
        if fgc_penalty < 1.0:
            raise ValueError(f"fgc_penalty must be >= 1.0, got {fgc_penalty}")
        self.nand = nand
        self.space = space
        self.geometry = nand.geometry
        self.page_map = PageMap(nand.geometry, space.user_pages)
        self.victim_selector = victim_selector or GreedySelector()
        self.fgc_watermark = fgc_watermark
        self.fgc_penalty = fgc_penalty
        self.wear_leveler = wear_leveler
        self.stats = FtlStats()

        self._op_counter = 0
        self._clock = clock or self._default_clock

        #: LPNs the host reported as soon-to-be-invalidated (paper's SIP list).
        self.sip_lpns: Set[int] = set()

        good = [
            block
            for block in range(self.geometry.total_blocks)
            if not nand.is_bad(block)
        ]
        if len(good) < fgc_watermark + 2:
            raise FtlError("not enough good blocks to operate")
        self.allocator = WearAwareAllocator(nand.endurance, initial_free=good)
        #: Time each block was closed (frontier filled); for cost-benefit age.
        self._close_time = np.zeros(self.geometry.total_blocks, dtype=np.int64)
        #: True for blocks that are in use and completely programmed.
        self._closed = np.zeros(self.geometry.total_blocks, dtype=bool)

        self._active_user_block = self._allocate_block()
        self._active_gc_block = self._allocate_block()
        #: Erases since the last wear-levelling check.
        self._erases_since_wl_check = 0

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------
    def _default_clock(self) -> int:
        return self._op_counter

    def _allocate_block(self) -> int:
        block = self.allocator.allocate()
        if block is None:
            raise FtlError("free-block pool exhausted (GC failed to keep up)")
        return block

    @property
    def active_user_block(self) -> int:
        return self._active_user_block

    @property
    def active_gc_block(self) -> int:
        return self._active_gc_block

    # ------------------------------------------------------------------
    # Capacity queries (the paper's Cfree / Cused)
    # ------------------------------------------------------------------
    def free_pool_blocks(self) -> int:
        return len(self.allocator)

    def free_pages(self) -> int:
        """Pages writable without any GC: pool blocks + open frontiers."""
        ppb = self.geometry.pages_per_block
        frontier_user = ppb - self.nand.next_programmable_page(self._active_user_block)
        frontier_gc = ppb - self.nand.next_programmable_page(self._active_gc_block)
        return len(self.allocator) * ppb + frontier_user + frontier_gc

    def free_bytes(self) -> int:
        """The paper's ``Cfree`` in bytes."""
        return self.free_pages() * self.geometry.page_size

    def used_pages(self) -> int:
        """Live logical pages (the paper's ``Cused`` in pages)."""
        return self.page_map.mapped_count

    def reclaimable_garbage_pages(self) -> int:
        """Invalid pages sitting in closed blocks (BGC's raw material)."""
        closed = np.flatnonzero(self._closed)
        if len(closed) == 0:
            return 0
        ppb = self.geometry.pages_per_block
        valid = self.page_map.valid_counts()[closed]
        return int((ppb - valid).sum())

    # ------------------------------------------------------------------
    # Host datapath
    # ------------------------------------------------------------------
    def host_write_page(self, lpn: int) -> int:
        """Write one logical page; returns total NAND latency (ns).

        Runs foreground GC first when the free pool is at the watermark;
        the returned latency then includes the full stall.
        """
        latency = 0
        if self.needs_foreground_gc():
            latency += self._run_foreground_gc()
        latency += self._program_user_page(lpn)
        latency += self.nand.timing.transfer_ns_per_page
        return latency

    def host_read_page(self, lpn: int) -> int:
        """Read one logical page; returns NAND latency (ns).

        Reads of never-written pages return zeroes at transfer cost only
        (no flash access), like a real drive.
        """
        ppn = self.page_map.lookup(lpn)
        self.stats.host_pages_read += 1
        if ppn is None:
            return self.nand.timing.transfer_ns_per_page
        latency = self.nand.read_page(self.page_map.block_of(ppn), self.page_map.page_of(ppn))
        return latency + self.nand.timing.transfer_ns_per_page

    def trim(self, lpns: Iterable[int]) -> int:
        """TRIM logical pages; returns (negligible) latency.

        TRIM creates garbage without writes -- file deletion in the
        Postmark/Filebench workloads reaches the FTL through here.
        """
        count = 0
        for lpn in lpns:
            if self.page_map.unmap(lpn) is not None:
                count += 1
        self.stats.pages_trimmed += count
        return 0

    def _program_user_page(self, lpn: int) -> int:
        self._op_counter += 1
        block, page, extra = self._frontier_slot(user=True)
        latency = extra + self.nand.program_page(block, page)
        self.page_map.remap(lpn, self.page_map.ppn(block, page))
        self.stats.host_pages_written += 1
        return latency

    def _frontier_slot(self, user: bool) -> Tuple[int, int, int]:
        """Return (block, page, extra_latency) for the next frontier page,
        rolling to a fresh free block when the current frontier is full."""
        block = self._active_user_block if user else self._active_gc_block
        page = self.nand.next_programmable_page(block)
        extra = 0
        if page >= self.geometry.pages_per_block:
            self._close_block(block)
            new_block = self._allocate_block()
            if user:
                self._active_user_block = new_block
            else:
                self._active_gc_block = new_block
            block, page = new_block, 0
        return block, page, extra

    def _close_block(self, block: int) -> None:
        self._closed[block] = True
        self._close_time[block] = self._clock()

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def needs_foreground_gc(self) -> bool:
        """True when a host write must stall for GC first."""
        return len(self.allocator) <= self.fgc_watermark

    def gc_candidates(self) -> np.ndarray:
        """Closed in-use blocks eligible as GC victims."""
        return np.flatnonzero(self._closed)

    def has_victim(self) -> bool:
        """True if some candidate holds reclaimable garbage."""
        candidates = self.gc_candidates()
        if len(candidates) == 0:
            return False
        valid = self.page_map.valid_counts()[candidates]
        return bool((valid < self.geometry.pages_per_block).any())

    def collect_one_block(
        self,
        background: bool,
        forced_victim: Optional[int] = None,
    ) -> int:
        """Collect a single victim block; returns the NAND latency (ns).

        Args:
            background: attribute the work to BGC (idle-time) rather than
                FGC (write-stall) counters.
            forced_victim: bypass the selector (wear levelling).

        Raises:
            OutOfSpaceError: no candidate has any garbage to reclaim.
        """
        if forced_victim is not None:
            victim: Optional[int] = forced_victim
        else:
            candidates = self.gc_candidates()
            decision = self.victim_selector.select(
                candidates,
                self.page_map,
                block_ages=self._ages(),
                sip_lpns=self.sip_lpns,
            )
            victim = decision.block
            if victim is not None:
                self.stats.victim_selections += 1
                if decision.filtered_by_sip > 0:
                    self.stats.victims_filtered_by_sip += 1
        if victim is None:
            raise OutOfSpaceError("no GC victim available")
        if self.page_map.valid_count(victim) >= self.geometry.pages_per_block:
            raise OutOfSpaceError(
                f"best victim {victim} has no invalid pages; device is full of live data"
            )

        latency = self._migrate_and_erase(victim)
        if background:
            self.stats.bgc_blocks_collected += 1
            self.stats.bgc_time_ns += latency
        else:
            self.stats.fgc_blocks_collected += 1
            self.stats.fgc_time_ns += latency
        self._erases_since_wl_check += 1
        return latency

    def _migrate_and_erase(self, victim: int) -> int:
        latency = 0
        victims_pages: List[Tuple[int, int]] = list(self.page_map.valid_lpns_in_block(victim))
        for offset, lpn in victims_pages:
            latency += self.nand.read_page(victim, offset)
            self.stats.gc_pages_read += 1
            block, page, extra = self._frontier_slot(user=False)
            latency += extra + self.nand.program_page(block, page)
            self.page_map.remap(lpn, self.page_map.ppn(block, page))
            self.stats.gc_pages_migrated += 1

        self.page_map.clear_block(victim)
        latency += self.nand.erase_block(victim)
        self.stats.blocks_erased += 1
        self._closed[victim] = False
        if not self.nand.is_bad(victim):
            self.allocator.release(victim)
        return latency

    def _run_foreground_gc(self) -> int:
        """Collect until the pool is safely above the watermark."""
        self.stats.fgc_invocations += 1
        latency = 0
        while len(self.allocator) <= self.fgc_watermark:
            latency += self.collect_one_block(background=False)
        penalised = int(latency * self.fgc_penalty)
        self.stats.fgc_time_ns += penalised - latency
        return penalised

    def _ages(self) -> np.ndarray:
        """Per-block age proxy for cost-benefit selection."""
        now = self._clock()
        return np.maximum(0, now - self._close_time)

    # ------------------------------------------------------------------
    # Wear levelling
    # ------------------------------------------------------------------
    def maybe_wear_level(self, check_interval_erases: int = 256) -> int:
        """Run one static wear-levelling migration if the spread warrants.

        Called opportunistically by the device during idle periods.
        Returns the NAND latency spent (0 if nothing was done).
        """
        if self.wear_leveler is None:
            return 0
        if self._erases_since_wl_check < check_interval_erases:
            return 0
        self._erases_since_wl_check = 0
        in_use = self.gc_candidates()
        if not self.wear_leveler.needs_levelling(in_use):
            return 0
        cold = self.wear_leveler.pick_cold_block(in_use)
        if cold is None:
            return 0
        latency = self.collect_one_block(background=True, forced_victim=cold)
        self.stats.wl_blocks_collected += 1
        return latency

    # ------------------------------------------------------------------
    # Host-interface extensions (paper Sec 3.1)
    # ------------------------------------------------------------------
    def set_sip_list(self, lpns: Iterable[int]) -> None:
        """Install the soon-to-be-invalidated page list from the host."""
        self.sip_lpns = set(lpns)

    def invariant_check(self) -> None:
        """Cross-structure consistency check used by tests."""
        self.page_map.invariant_check()
        for block in range(self.geometry.total_blocks):
            in_pool = block in self.allocator
            is_active = block in (self._active_user_block, self._active_gc_block)
            if in_pool and (is_active or self._closed[block]):
                raise AssertionError(f"block {block} both free and in use")
            if in_pool and self.page_map.valid_count(block) != 0:
                raise AssertionError(f"free block {block} holds valid pages")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PageMappedFtl free={self.free_pool_blocks()}blk "
            f"used={self.used_pages()}p waf={self.stats.waf():.3f}>"
        )
