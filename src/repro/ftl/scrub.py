"""Background refresh scrubber: relocate data before it decays.

Retention charge-leak and read disturb push a block's raw bit error
rate up over time; once the ECC escalation ladder can no longer cover
it, reads become UECCs and data is lost.  Real FTLs prevent that with a
*refresh* (patrol-scrub) pass: endangered blocks are migrated -- read,
reprogrammed elsewhere, erased -- which re-bases both the retention
clock and the disturb counter.

:class:`RefreshScrubber` implements the standard two-part scheduler:

* a **scan cursor** sweeps the block range a few blocks per idle tick
  (``ReliabilityProfile.scrub_scan_blocks``), vectorised over the SoA
  state -- the steady patrol that eventually visits everything;
* an **at-risk queue** holds the blocks a sweep found beyond the
  retention-age or disturb threshold; the queue drains first, so a
  burst of endangered blocks is refreshed ahead of the patrol order.

The scrubber only *nominates* victims.  The FTL's
:meth:`~repro.ftl.ftl.PageMappedFtl.maybe_scrub` relocates them through
the ordinary :meth:`collect_one_block` machinery (same frontier, same
erase/retire paths), so refresh migrations are charged into WAF, wear
and the JIT-GC demand estimate exactly like any other GC work -- and
the device invokes it through the same idle window BGC uses, so scrub
genuinely competes with JIT-GC for idle time.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.nand.reliability import ReliabilityProfile


class RefreshScrubber:
    """Scan-cursor + at-risk-queue victim nomination for refresh."""

    def __init__(self, profile: ReliabilityProfile) -> None:
        self.profile = profile
        #: Modelled-seconds per simulated nanosecond (retention math).
        self._accel_per_ns = profile.retention_accel / 1e9
        self._cursor = 0
        self._queue: deque = deque()
        self._queued: set = set()

    # ------------------------------------------------------------------
    # At-risk predicate
    # ------------------------------------------------------------------
    def block_at_risk(self, ftl, block: int, now_ns: int) -> bool:
        """One closed block's endangerment (queue re-validation)."""
        if not ftl._closed[block]:
            # Erased, re-opened, collected or retired since it was
            # queued -- its clock was re-based (or it left service).
            return False
        age_s = (now_ns - int(ftl.nand.last_program_ns[block])) * self._accel_per_ns
        if age_s >= self.profile.retention_threshold_s:
            return True
        tracker = ftl.nand.read_disturb
        return tracker is not None and (
            int(tracker.read_counts[block]) >= self.profile.disturb_threshold
        )

    def _segment_at_risk(self, ftl, start: int, end: int, now_ns: int) -> np.ndarray:
        """At-risk block numbers in ``[start, end)``, vectorised."""
        closed = ftl._closed[start:end]
        ages_s = (
            now_ns - ftl.nand.last_program_ns[start:end]
        ) * self._accel_per_ns
        risk = closed & (ages_s >= self.profile.retention_threshold_s)
        tracker = ftl.nand.read_disturb
        if tracker is not None:
            risk |= closed & (
                tracker.read_counts[start:end] >= self.profile.disturb_threshold
            )
        return np.flatnonzero(risk) + start

    # ------------------------------------------------------------------
    # Victim nomination
    # ------------------------------------------------------------------
    def next_victim(self, ftl, now_ns: int) -> Optional[int]:
        """The next block needing refresh, or None if nothing is at risk.

        Drains the at-risk queue first (stale entries are re-validated
        and dropped), then advances the scan cursor one
        ``scrub_scan_blocks`` segment; extra finds from the segment are
        queued for the following ticks.
        """
        while self._queue:
            block = self._queue.popleft()
            self._queued.discard(block)
            if self.block_at_risk(ftl, block, now_ns):
                return block
        total = ftl.geometry.total_blocks
        start = self._cursor
        end = min(start + self.profile.scrub_scan_blocks, total)
        self._cursor = end if end < total else 0
        found = self._segment_at_risk(ftl, start, end, now_ns)
        victim: Optional[int] = None
        for block in found:
            block = int(block)
            if victim is None:
                victim = block
            elif block not in self._queued:
                self._queued.add(block)
                self._queue.append(block)
        return victim

    def pending(self) -> int:
        """Queued at-risk blocks awaiting refresh (observability)."""
        return len(self._queue)
