"""Flash translation layer.

Implements the firmware half of the paper's storage system:

* :mod:`repro.ftl.space` -- the Fig. 1 space model: user capacity,
  over-provisioning (OP) capacity and the *reserved capacity* ``Cresv``
  that defines lazy vs aggressive background GC.
* :mod:`repro.ftl.mapping` -- page-level LPN↔PPN mapping with validity
  tracking.
* :mod:`repro.ftl.victim` -- pluggable GC victim selection (greedy,
  cost-benefit, and the paper's SIP-filtered greedy).
* :mod:`repro.ftl.wear` -- free-block allocation ordered by wear plus a
  static wear-levelling sweep.
* :mod:`repro.ftl.stats` -- WAF, migration and GC-invocation counters.
* :mod:`repro.ftl.ftl` -- :class:`PageMappedFtl`, the write/read/trim
  datapath with foreground and background garbage collection.
* :mod:`repro.ftl.recovery` -- post-power-loss reconstruction: the
  full-device OOB scan, torn-page discard, newest-copy-wins mapping and
  layout re-discovery.
"""

from repro.ftl.space import SpaceModel
from repro.ftl.mapping import PageMap
from repro.ftl.victim import (
    VictimSelector,
    GreedySelector,
    CostBenefitSelector,
    RandomSelector,
    FifoSelector,
    SipFilteredSelector,
    VictimDecision,
)
from repro.ftl.wear import WearAwareAllocator, StaticWearLeveler
from repro.ftl.stats import FtlStats
from repro.ftl.ftl import PageMappedFtl, FtlError, OutOfSpaceError
from repro.ftl.recovery import (
    RecoveredFtlState,
    RecoveryError,
    RecoveryReport,
    recover_ftl,
    rediscover_layout,
    scan_oob,
)

__all__ = [
    "SpaceModel",
    "PageMap",
    "VictimSelector",
    "GreedySelector",
    "CostBenefitSelector",
    "RandomSelector",
    "FifoSelector",
    "SipFilteredSelector",
    "VictimDecision",
    "WearAwareAllocator",
    "StaticWearLeveler",
    "FtlStats",
    "PageMappedFtl",
    "FtlError",
    "OutOfSpaceError",
    "RecoveredFtlState",
    "RecoveryError",
    "RecoveryReport",
    "recover_ftl",
    "rediscover_layout",
    "scan_oob",
]
