"""Page-level address mapping with validity tracking.

:class:`PageMap` is the FTL's logical heart: the LPN→PPN table, the
reverse PPN→LPN table, a per-page validity bitmap and per-block valid-page
counters.  Out-place updates (the NAND erase-before-write consequence) are
expressed here: remapping an LPN invalidates its previous physical page,
creating the garbage that GC later reclaims.

Physical page numbers are flat: ``ppn = block * pages_per_block + page``.

Two ``MappingStore`` implementations share this interface:

* :class:`PageMap` -- the all-DRAM page map: every LPN→PPN entry is
  resident, translation costs nothing.  This is the historical (and
  default) mode; its behaviour is bit-frozen by the equivalence suites.
* :class:`CachedPageMap` -- the DFTL-class flash-resident map:
  translation pages live on NAND in dedicated translation blocks, a
  global translation directory (GTD) pins each translation page's
  current location, and an LRU cached mapping table (CMT) with a
  configurable DRAM budget fronts them.  The FTL prices CMT misses
  (translation-page reads) and dirty evictions (translation-page
  programs) as real NAND traffic.

Translation pages are addressed by *virtual translation page number*
(``tvpn = lpn // entries_per_tpage``) and stamped on NAND with the
encoded OOB LPN ``TRANS_LPN_BASE + tvpn``, which keeps the recovery
scan's newest-stamp-wins merge working unchanged over both page classes:
stamps below the base rebuild the data L2P, stamps at or above it
rebuild the GTD.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.nand.geometry import NandGeometry

#: Sentinel for "unmapped" entries in both translation directions.
UNMAPPED: int = -1

#: OOB-stamp namespace split between data pages and translation pages:
#: a stamped LPN at or above this base is a translation page and encodes
#: ``TRANS_LPN_BASE + tvpn``.  Far above any realistic logical space
#: (2^48 4-KiB pages = 1 EiB) and comfortably inside int64 OOB slots.
TRANS_LPN_BASE: int = 1 << 48


class PageMap:
    """LPN↔PPN translation state.

    Args:
        geometry: NAND geometry (defines the physical page space).
        user_pages: size of the logical page space.
    """

    def __init__(self, geometry: NandGeometry, user_pages: int) -> None:
        if user_pages <= 0:
            raise ValueError(f"user_pages must be positive, got {user_pages}")
        self.geometry = geometry
        self.user_pages = user_pages
        # Cached int: the per-write paths below do flat-address math per
        # call and must not walk the geometry attribute chain each time.
        self._ppb = geometry.pages_per_block
        self._l2p = np.full(user_pages, UNMAPPED, dtype=np.int64)
        self._p2l = np.full(geometry.total_pages, UNMAPPED, dtype=np.int64)
        self._valid = np.zeros(geometry.total_pages, dtype=bool)
        self._valid_per_block = np.zeros(geometry.total_blocks, dtype=np.int32)
        #: Number of LPNs currently mapped (the paper's ``Cused`` in pages).
        self.mapped_count = 0
        #: Single observer called as ``(block, lpn, delta)`` on every
        #: per-page validity change (delta is +1 or -1).  The FTL's
        #: victim/SIP indexes subscribe here; None costs one ``is None``
        #: check per mutation.
        self._observer: Optional[Callable[[int, int, int], None]] = None

    def set_valid_observer(
        self, observer: Optional[Callable[[int, int, int], None]]
    ) -> None:
        """Install (or with ``None`` remove) the validity-change observer."""
        self._observer = observer

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def ppn(self, block: int, page: int) -> int:
        return block * self._ppb + page

    def block_of(self, ppn: int) -> int:
        return ppn // self._ppb

    def page_of(self, ppn: int) -> int:
        return ppn % self._ppb

    def check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.user_pages:
            raise IndexError(f"LPN {lpn} out of range [0, {self.user_pages})")

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def remap(self, lpn: int, new_ppn: int) -> Optional[int]:
        """Point ``lpn`` at ``new_ppn``; returns the invalidated old PPN.

        The caller must have already programmed ``new_ppn``.  If the LPN
        was mapped, its old physical page becomes invalid (garbage).

        This is the per-host-write inner loop: address math is inlined
        on the cached ``_ppb`` int (see :meth:`check_lpn` for the bounds
        contract it preserves).
        """
        if not 0 <= lpn < self.user_pages:
            raise IndexError(f"LPN {lpn} out of range [0, {self.user_pages})")
        old_ppn = int(self._l2p[lpn])
        if old_ppn != UNMAPPED:
            self._invalidate_ppn(old_ppn)
        else:
            self.mapped_count += 1
        self._l2p[lpn] = new_ppn
        self._p2l[new_ppn] = lpn
        self._valid[new_ppn] = True
        block = new_ppn // self._ppb
        self._valid_per_block[block] += 1
        if self._observer is not None:
            self._observer(block, lpn, 1)
        return old_ppn if old_ppn != UNMAPPED else None

    def unmap(self, lpn: int) -> Optional[int]:
        """TRIM: drop the mapping of ``lpn``; returns the freed PPN."""
        self.check_lpn(lpn)
        old_ppn = int(self._l2p[lpn])
        if old_ppn == UNMAPPED:
            return None
        self._invalidate_ppn(old_ppn)
        self._l2p[lpn] = UNMAPPED
        self.mapped_count -= 1
        return old_ppn

    def unmap_many(self, lpns: Iterable[int]) -> List[int]:
        """Batched :meth:`unmap`; returns the LPNs that were mapped.

        A TRIM command covers an extent, but typically only part of it
        still maps to live pages (re-trims and sparse files are common);
        the returned list is exactly the set the FTL must tombstone in
        the durable unmap journal -- already-unmapped LPNs need none,
        because they were either never written or their previous
        tombstone already outranks every surviving copy.
        """
        freed: List[int] = []
        for lpn in lpns:
            if self.unmap(lpn) is not None:
                freed.append(lpn)
        return freed

    # Below this extent size the fixed overhead of the ~10 numpy vector
    # ops exceeds the cost of a scalar loop (writeback chunks are
    # typically a handful of pages).
    _SCALAR_EXTENT_MAX = 32

    def remap_extent(self, first_lpn: int, count: int, first_ppn: int) -> List[int]:
        """Batched :meth:`remap` of a contiguous LPN extent onto a
        contiguous just-programmed PPN run inside one block.

        Semantically identical to ``remap(first_lpn + i, first_ppn + i)``
        for ``i in range(count)``; returns the old-PPN list (``UNMAPPED``
        where the LPN was fresh).  Like :meth:`migrate_pages` it does NOT
        fire the per-page observer -- the caller (the FTL's batched host
        write) applies the aggregated index deltas itself.  Small extents
        take a scalar loop; large ones the vectorized path -- both apply
        the exact same state transitions.
        """
        if first_lpn < 0 or first_lpn + count > self.user_pages:
            raise IndexError(
                f"LPN extent [{first_lpn}, {first_lpn + count}) out of range "
                f"[0, {self.user_pages})"
            )
        l2p = self._l2p
        p2l = self._p2l
        valid = self._valid
        per_block = self._valid_per_block
        ppb = self._ppb
        old_ppns = l2p[first_lpn:first_lpn + count].tolist()
        if count <= self._SCALAR_EXTENT_MAX:
            fresh = 0
            lpn, ppn = first_lpn, first_ppn
            for old in old_ppns:
                if old != UNMAPPED:
                    if not valid[old]:
                        raise RuntimeError("double invalidation in remap_extent")
                    valid[old] = False
                    p2l[old] = UNMAPPED
                    per_block[old // ppb] -= 1
                else:
                    fresh += 1
                l2p[lpn] = ppn
                p2l[ppn] = lpn
                valid[ppn] = True
                lpn += 1
                ppn += 1
            self.mapped_count += fresh
        else:
            old_arr = np.asarray(old_ppns, dtype=np.int64)
            old = old_arr[old_arr != UNMAPPED]
            if old.size:
                if not valid[old].all():
                    raise RuntimeError("double invalidation in remap_extent")
                valid[old] = False
                p2l[old] = UNMAPPED
                np.subtract.at(per_block, old // ppb, 1)
            self.mapped_count += count - int(old.size)
            l2p[first_lpn:first_lpn + count] = np.arange(
                first_ppn, first_ppn + count, dtype=np.int64
            )
            p2l[first_ppn:first_ppn + count] = np.arange(
                first_lpn, first_lpn + count, dtype=np.int64
            )
            valid[first_ppn:first_ppn + count] = True
        per_block[first_ppn // ppb] += count
        return old_ppns

    def load_mapping(self, l2p: np.ndarray) -> None:
        """Install a complete L2P table in one shot (recovery scan).

        ``l2p`` is a full ``user_pages``-long PPN vector (``UNMAPPED``
        where the LPN has no surviving copy); the reverse map, validity
        bitmap, per-block counters and ``mapped_count`` are all rebuilt
        from it.  Replaces any existing state and does **not** fire the
        validity observer -- the recovery path rebuilds its indexes from
        the resulting counters itself.
        """
        if len(l2p) != self.user_pages:
            raise ValueError(
                f"l2p table sized {len(l2p)}, map holds {self.user_pages} LPNs"
            )
        self._l2p[:] = l2p
        self._p2l[:] = UNMAPPED
        self._valid[:] = False
        self._valid_per_block[:] = 0
        lpns = np.flatnonzero(self._l2p != UNMAPPED)
        ppns = self._l2p[lpns]
        if len(np.unique(ppns)) != len(ppns):
            raise ValueError("l2p table maps two LPNs to the same physical page")
        self._p2l[ppns] = lpns
        self._valid[ppns] = True
        np.add.at(self._valid_per_block, ppns // self._ppb, 1)
        self.mapped_count = int(len(lpns))

    def _invalidate_ppn(self, ppn: int) -> None:
        if not self._valid[ppn]:
            raise RuntimeError(f"double invalidation of PPN {ppn}")
        self._valid[ppn] = False
        lpn = int(self._p2l[ppn])
        self._p2l[ppn] = UNMAPPED
        block = ppn // self._ppb
        self._valid_per_block[block] -= 1
        if self._observer is not None:
            self._observer(block, lpn, -1)

    def clear_block(self, block: int) -> None:
        """Reset per-page state of ``block`` after an erase.

        All pages of the block must already be invalid (GC migrates valid
        pages out before erasing); this is asserted to catch GC bugs.
        """
        if self._valid_per_block[block] != 0:
            raise RuntimeError(
                f"erasing block {block} with {self._valid_per_block[block]} valid pages"
            )
        start = block * self.geometry.pages_per_block
        end = start + self.geometry.pages_per_block
        self._p2l[start:end] = UNMAPPED
        self._valid[start:end] = False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def l2p_snapshot(self) -> np.ndarray:
        """Copy of the full LPN→PPN vector (``UNMAPPED`` where unmapped).

        For recovery oracles and crash-sweep verification -- one array
        compare instead of ``user_pages`` :meth:`lookup` calls.
        """
        return self._l2p.copy()

    def lookup(self, lpn: int) -> Optional[int]:
        """Current PPN of ``lpn``, or None if unmapped."""
        self.check_lpn(lpn)
        ppn = int(self._l2p[lpn])
        return None if ppn == UNMAPPED else ppn

    def lpn_of_ppn(self, ppn: int) -> Optional[int]:
        """LPN stored at ``ppn`` if that physical page is valid."""
        lpn = int(self._p2l[ppn])
        return None if lpn == UNMAPPED else lpn

    def mapped_blocks(self, lpns: Iterable[int]) -> np.ndarray:
        """Block index of each currently-mapped LPN in ``lpns``.

        Vectorized batch form of :meth:`lookup` + :meth:`block_of`;
        unmapped LPNs are dropped.  A block appears once per mapped LPN
        it holds, so the result feeds ``np.add.at`` style accumulation.
        """
        arr = np.fromiter(lpns, dtype=np.int64)
        ppns = self._l2p[arr]
        return ppns[ppns != UNMAPPED] // self.geometry.pages_per_block

    def is_valid(self, ppn: int) -> bool:
        return bool(self._valid[ppn])

    def valid_count(self, block: int) -> int:
        return int(self._valid_per_block[block])

    def valid_counts(self) -> np.ndarray:
        """Read-only view of per-block valid-page counters."""
        return self._valid_per_block

    def valid_lpns_in_block(self, block: int) -> Iterator[int]:
        """Yield (page_offset, lpn) for each valid page in ``block``.

        Yields in ascending page order, which keeps GC migration
        deterministic.
        """
        start = block * self.geometry.pages_per_block
        end = start + self.geometry.pages_per_block
        valid = self._valid[start:end]
        lpns = self._p2l[start:end]
        for offset in np.flatnonzero(valid):
            yield int(offset), int(lpns[offset])

    def valid_pages_in_block(self, block: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(page_offsets, lpns)`` arrays for the valid pages of ``block``.

        Batch form of :meth:`valid_lpns_in_block` in the same ascending
        page order (the order GC migration depends on for determinism).
        """
        start = block * self.geometry.pages_per_block
        offsets = np.flatnonzero(self._valid[start:start + self.geometry.pages_per_block])
        return offsets, self._p2l[start + offsets]

    # ------------------------------------------------------------------
    # Batched mutations (GC migration fast path)
    # ------------------------------------------------------------------
    def migrate_pages(
        self,
        src_block: int,
        offsets: np.ndarray,
        lpns: np.ndarray,
        dst_block: int,
        dst_start: int,
    ) -> None:
        """Move valid pages ``offsets`` of ``src_block`` (mapping ``lpns``)
        onto consecutive pages of ``dst_block`` starting at ``dst_start``.

        Array-batched equivalent of per-page ``remap(lpn, new_ppn)`` calls
        during GC migration: the source pages become invalid, the LPNs
        point at the destination pages, ``mapped_count`` is unchanged.
        Deliberately does **not** fire the per-page validity observer --
        the caller (the FTL's batched migration) applies the equivalent
        index updates in bulk itself.
        """
        n = len(offsets)
        if n == 0:
            return
        ppb = self.geometry.pages_per_block
        old_ppns = src_block * ppb + offsets
        if not self._valid[old_ppns].all():
            raise RuntimeError(f"migrating invalid pages out of block {src_block}")
        new_ppns = dst_block * ppb + dst_start + np.arange(n, dtype=np.int64)
        self._valid[old_ppns] = False
        self._p2l[old_ppns] = UNMAPPED
        self._valid[new_ppns] = True
        self._p2l[new_ppns] = lpns
        self._l2p[lpns] = new_ppns
        self._valid_per_block[src_block] -= n
        self._valid_per_block[dst_block] += n

    def invariant_check(self) -> None:
        """Full-state consistency check on batched array ops (O(total pages)).

        Bit-identical verdicts to :meth:`invariant_check_scan`, which is
        kept as the per-LPN executable specification.
        """
        if int(self._valid.sum()) != self.mapped_count:
            raise AssertionError("valid-page population does not match mapped_count")
        per_block = np.add.reduceat(
            self._valid.astype(np.int32),
            np.arange(0, self.geometry.total_pages, self.geometry.pages_per_block),
        )
        if not np.array_equal(per_block, self._valid_per_block):
            raise AssertionError("per-block valid counters out of sync")
        mapped = np.flatnonzero(self._l2p != UNMAPPED)
        if len(mapped):
            ppns = self._l2p[mapped]
            bad = ~self._valid[ppns] | (self._p2l[ppns] != mapped)
            if bad.any():
                raise AssertionError(
                    f"l2p/p2l mismatch at LPN {int(mapped[np.argmax(bad)])}"
                )

    def invariant_check_scan(self) -> None:
        """Per-LPN reference recount of :meth:`invariant_check`."""
        if int(self._valid.sum()) != self.mapped_count:
            raise AssertionError("valid-page population does not match mapped_count")
        per_block = np.add.reduceat(
            self._valid.astype(np.int32),
            np.arange(0, self.geometry.total_pages, self.geometry.pages_per_block),
        )
        if not np.array_equal(per_block, self._valid_per_block):
            raise AssertionError("per-block valid counters out of sync")
        mapped = np.flatnonzero(self._l2p != UNMAPPED)
        for lpn in mapped:
            ppn = int(self._l2p[lpn])
            if not self._valid[ppn] or int(self._p2l[ppn]) != lpn:
                raise AssertionError(f"l2p/p2l mismatch at LPN {lpn}")


class CachedPageMap(PageMap):
    """DFTL-class mapping store: on-NAND translation pages + GTD + CMT.

    Extends :class:`PageMap` with the flash-resident translation tier:

    * the **GTD** (global translation directory) is an int64 vector of
      one entry per virtual translation page (``tvpn``), pinning the PPN
      of that translation page's newest on-NAND copy (``UNMAPPED`` until
      first flushed).  At 8 bytes per ``entries_per_tpage`` mapping
      entries it is ~1/512 of the full map and is assumed DRAM-resident,
      exactly like DFTL's.
    * the **CMT** (cached mapping table) is an LRU over translation
      pages, capped at ``cmt_capacity_pages``.  The FTL consults it on
      every translation; a miss costs a NAND read of the translation
      page, a dirty eviction a NAND program of a fresh copy.

    Translation pages share the physical validity plane with data pages:
    ``_p2l`` stores the encoded ``TRANS_LPN_BASE + tvpn`` for a valid
    translation page, so ``valid_lpns_in_block`` / per-block counters /
    the valid-count observer all see translation blocks exactly like
    data blocks -- which is how GC learns the second block class for
    free.  ``mapped_count`` keeps its host semantics (data LPNs only,
    the paper's ``Cused``); the translation population is tracked apart
    in :attr:`gtd_mapped_count`.

    The ground-truth L2P stays in the inherited DRAM arrays: the
    simulator always knows the true mapping, and what this class adds is
    the *cost model* (which translations are cached, what each access
    pays) plus the durable translation-page layout that recovery and the
    crash sweep verify bit-identically.
    """

    def __init__(
        self,
        geometry: NandGeometry,
        user_pages: int,
        cmt_capacity_pages: int,
    ) -> None:
        super().__init__(geometry, user_pages)
        if cmt_capacity_pages < 1:
            raise ValueError(
                f"cmt_capacity_pages must be >= 1, got {cmt_capacity_pages}"
            )
        #: Mapping entries per translation page (8-byte PPN entries).
        self.entries_per_tpage = geometry.page_size // 8
        self.trans_pages = -(-user_pages // self.entries_per_tpage)  # ceil
        #: GTD: tvpn -> PPN of the newest flushed translation page.
        self._gtd = np.full(self.trans_pages, UNMAPPED, dtype=np.int64)
        #: Translation pages with a flushed on-NAND copy.
        self.gtd_mapped_count = 0
        #: LRU cached mapping table: tvpn -> dirty flag, newest last.
        self._cmt: "OrderedDict[int, bool]" = OrderedDict()
        self.cmt_capacity_pages = cmt_capacity_pages

    # ------------------------------------------------------------------
    # Translation addressing
    # ------------------------------------------------------------------
    def tvpn_of(self, lpn: int) -> int:
        return lpn // self.entries_per_tpage

    def trans_ppn(self, tvpn: int) -> Optional[int]:
        """PPN of ``tvpn``'s newest flushed copy, or None if never flushed."""
        ppn = int(self._gtd[tvpn])
        return None if ppn == UNMAPPED else ppn

    def gtd_snapshot(self) -> np.ndarray:
        """Copy of the GTD vector (crash-sweep verification, checkpoints)."""
        return self._gtd.copy()

    def block_holds_trans(self, block: int) -> bool:
        """True when ``block`` holds at least one valid translation page."""
        start = block * self._ppb
        return bool((self._p2l[start:start + self._ppb] >= TRANS_LPN_BASE).any())

    # ------------------------------------------------------------------
    # Translation-page mutations (mirroring remap/load_mapping)
    # ------------------------------------------------------------------
    def remap_trans(self, tvpn: int, new_ppn: int) -> Optional[int]:
        """Point ``tvpn``'s directory entry at a just-programmed copy.

        The old copy (if any) becomes garbage exactly like a data page's:
        the validity observer fires, so the valid-count index -- and with
        it victim selection -- covers translation blocks with no extra
        bookkeeping.  Returns the invalidated old PPN.
        """
        if not 0 <= tvpn < self.trans_pages:
            raise IndexError(f"tvpn {tvpn} out of range [0, {self.trans_pages})")
        old_ppn = int(self._gtd[tvpn])
        if old_ppn != UNMAPPED:
            self._invalidate_ppn(old_ppn)
        else:
            self.gtd_mapped_count += 1
        self._gtd[tvpn] = new_ppn
        self._p2l[new_ppn] = TRANS_LPN_BASE + tvpn
        self._valid[new_ppn] = True
        block = new_ppn // self._ppb
        self._valid_per_block[block] += 1
        if self._observer is not None:
            self._observer(block, TRANS_LPN_BASE + tvpn, 1)
        return old_ppn if old_ppn != UNMAPPED else None

    def load_gtd(self, gtd: np.ndarray) -> None:
        """Install a recovered GTD in one shot.

        Must run *after* :meth:`load_mapping` (which resets the shared
        validity plane); adds each flushed translation page back into the
        reverse map / validity bitmap / per-block counters.  Does not
        fire the observer, matching :meth:`load_mapping`'s contract.
        """
        if len(gtd) != self.trans_pages:
            raise ValueError(
                f"gtd sized {len(gtd)}, directory holds {self.trans_pages} entries"
            )
        self._gtd[:] = gtd
        tvpns = np.flatnonzero(self._gtd != UNMAPPED)
        ppns = self._gtd[tvpns]
        if len(np.unique(ppns)) != len(ppns):
            raise ValueError("gtd maps two translation pages to the same PPN")
        if self._valid[ppns].any():
            raise ValueError("gtd entry collides with a mapped data page")
        self._p2l[ppns] = TRANS_LPN_BASE + tvpns
        self._valid[ppns] = True
        np.add.at(self._valid_per_block, ppns // self._ppb, 1)
        self.gtd_mapped_count = int(len(tvpns))
        self._cmt.clear()

    # ------------------------------------------------------------------
    # CMT (the modelled DRAM budget)
    # ------------------------------------------------------------------
    def cmt_touch(self, tvpn: int, dirty: bool) -> Tuple[bool, List[Tuple[int, bool]]]:
        """Reference ``tvpn`` in the CMT; LRU-promote or fault it in.

        Returns ``(hit, evicted)`` where ``evicted`` lists the
        ``(tvpn, was_dirty)`` entries displaced to make room (at most
        one).  The *caller* (the FTL) prices the consequences: a miss
        reads the translation page off NAND, a dirty eviction programs a
        fresh copy and updates the GTD through :meth:`remap_trans`.
        """
        cmt = self._cmt
        if tvpn in cmt:
            cmt.move_to_end(tvpn)
            if dirty:
                cmt[tvpn] = True
            return True, []
        evicted: List[Tuple[int, bool]] = []
        while len(cmt) >= self.cmt_capacity_pages:
            evicted.append(cmt.popitem(last=False))
        cmt[tvpn] = dirty
        return False, evicted

    def cmt_flush_all(self) -> List[int]:
        """Mark every cached entry clean; returns the dirty tvpns.

        Checkpointing persists the whole directory, so cached entries
        stop being writeback debt at that instant.
        """
        dirty = [tvpn for tvpn, d in self._cmt.items() if d]
        for tvpn in dirty:
            self._cmt[tvpn] = False
        return dirty

    @property
    def cmt_len(self) -> int:
        return len(self._cmt)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def invariant_check(self) -> None:
        """Cross-check the shared validity plane over both page classes."""
        expected = self.mapped_count + self.gtd_mapped_count
        if int(self._valid.sum()) != expected:
            raise AssertionError(
                "valid-page population does not match mapped_count + "
                "gtd_mapped_count"
            )
        per_block = np.add.reduceat(
            self._valid.astype(np.int32),
            np.arange(0, self.geometry.total_pages, self.geometry.pages_per_block),
        )
        if not np.array_equal(per_block, self._valid_per_block):
            raise AssertionError("per-block valid counters out of sync")
        mapped = np.flatnonzero(self._l2p != UNMAPPED)
        if len(mapped):
            ppns = self._l2p[mapped]
            bad = ~self._valid[ppns] | (self._p2l[ppns] != mapped)
            if bad.any():
                raise AssertionError(
                    f"l2p/p2l mismatch at LPN {int(mapped[np.argmax(bad)])}"
                )
        tvpns = np.flatnonzero(self._gtd != UNMAPPED)
        if int(len(tvpns)) != self.gtd_mapped_count:
            raise AssertionError("gtd_mapped_count out of sync with the GTD")
        if len(tvpns):
            ppns = self._gtd[tvpns]
            bad = ~self._valid[ppns] | (
                self._p2l[ppns] != TRANS_LPN_BASE + tvpns
            )
            if bad.any():
                raise AssertionError(
                    f"gtd/p2l mismatch at tvpn {int(tvpns[np.argmax(bad)])}"
                )
        if len(self._cmt) > self.cmt_capacity_pages:
            raise AssertionError("CMT exceeds its capacity")
