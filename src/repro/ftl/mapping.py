"""Page-level address mapping with validity tracking.

:class:`PageMap` is the FTL's logical heart: the LPN→PPN table, the
reverse PPN→LPN table, a per-page validity bitmap and per-block valid-page
counters.  Out-place updates (the NAND erase-before-write consequence) are
expressed here: remapping an LPN invalidates its previous physical page,
creating the garbage that GC later reclaims.

Physical page numbers are flat: ``ppn = block * pages_per_block + page``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.nand.geometry import NandGeometry

#: Sentinel for "unmapped" entries in both translation directions.
UNMAPPED: int = -1


class PageMap:
    """LPN↔PPN translation state.

    Args:
        geometry: NAND geometry (defines the physical page space).
        user_pages: size of the logical page space.
    """

    def __init__(self, geometry: NandGeometry, user_pages: int) -> None:
        if user_pages <= 0:
            raise ValueError(f"user_pages must be positive, got {user_pages}")
        self.geometry = geometry
        self.user_pages = user_pages
        # Cached int: the per-write paths below do flat-address math per
        # call and must not walk the geometry attribute chain each time.
        self._ppb = geometry.pages_per_block
        self._l2p = np.full(user_pages, UNMAPPED, dtype=np.int64)
        self._p2l = np.full(geometry.total_pages, UNMAPPED, dtype=np.int64)
        self._valid = np.zeros(geometry.total_pages, dtype=bool)
        self._valid_per_block = np.zeros(geometry.total_blocks, dtype=np.int32)
        #: Number of LPNs currently mapped (the paper's ``Cused`` in pages).
        self.mapped_count = 0
        #: Single observer called as ``(block, lpn, delta)`` on every
        #: per-page validity change (delta is +1 or -1).  The FTL's
        #: victim/SIP indexes subscribe here; None costs one ``is None``
        #: check per mutation.
        self._observer: Optional[Callable[[int, int, int], None]] = None

    def set_valid_observer(
        self, observer: Optional[Callable[[int, int, int], None]]
    ) -> None:
        """Install (or with ``None`` remove) the validity-change observer."""
        self._observer = observer

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def ppn(self, block: int, page: int) -> int:
        return block * self._ppb + page

    def block_of(self, ppn: int) -> int:
        return ppn // self._ppb

    def page_of(self, ppn: int) -> int:
        return ppn % self._ppb

    def check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.user_pages:
            raise IndexError(f"LPN {lpn} out of range [0, {self.user_pages})")

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def remap(self, lpn: int, new_ppn: int) -> Optional[int]:
        """Point ``lpn`` at ``new_ppn``; returns the invalidated old PPN.

        The caller must have already programmed ``new_ppn``.  If the LPN
        was mapped, its old physical page becomes invalid (garbage).

        This is the per-host-write inner loop: address math is inlined
        on the cached ``_ppb`` int (see :meth:`check_lpn` for the bounds
        contract it preserves).
        """
        if not 0 <= lpn < self.user_pages:
            raise IndexError(f"LPN {lpn} out of range [0, {self.user_pages})")
        old_ppn = int(self._l2p[lpn])
        if old_ppn != UNMAPPED:
            self._invalidate_ppn(old_ppn)
        else:
            self.mapped_count += 1
        self._l2p[lpn] = new_ppn
        self._p2l[new_ppn] = lpn
        self._valid[new_ppn] = True
        block = new_ppn // self._ppb
        self._valid_per_block[block] += 1
        if self._observer is not None:
            self._observer(block, lpn, 1)
        return old_ppn if old_ppn != UNMAPPED else None

    def unmap(self, lpn: int) -> Optional[int]:
        """TRIM: drop the mapping of ``lpn``; returns the freed PPN."""
        self.check_lpn(lpn)
        old_ppn = int(self._l2p[lpn])
        if old_ppn == UNMAPPED:
            return None
        self._invalidate_ppn(old_ppn)
        self._l2p[lpn] = UNMAPPED
        self.mapped_count -= 1
        return old_ppn

    def unmap_many(self, lpns: Iterable[int]) -> List[int]:
        """Batched :meth:`unmap`; returns the LPNs that were mapped.

        A TRIM command covers an extent, but typically only part of it
        still maps to live pages (re-trims and sparse files are common);
        the returned list is exactly the set the FTL must tombstone in
        the durable unmap journal -- already-unmapped LPNs need none,
        because they were either never written or their previous
        tombstone already outranks every surviving copy.
        """
        freed: List[int] = []
        for lpn in lpns:
            if self.unmap(lpn) is not None:
                freed.append(lpn)
        return freed

    # Below this extent size the fixed overhead of the ~10 numpy vector
    # ops exceeds the cost of a scalar loop (writeback chunks are
    # typically a handful of pages).
    _SCALAR_EXTENT_MAX = 32

    def remap_extent(self, first_lpn: int, count: int, first_ppn: int) -> List[int]:
        """Batched :meth:`remap` of a contiguous LPN extent onto a
        contiguous just-programmed PPN run inside one block.

        Semantically identical to ``remap(first_lpn + i, first_ppn + i)``
        for ``i in range(count)``; returns the old-PPN list (``UNMAPPED``
        where the LPN was fresh).  Like :meth:`migrate_pages` it does NOT
        fire the per-page observer -- the caller (the FTL's batched host
        write) applies the aggregated index deltas itself.  Small extents
        take a scalar loop; large ones the vectorized path -- both apply
        the exact same state transitions.
        """
        if first_lpn < 0 or first_lpn + count > self.user_pages:
            raise IndexError(
                f"LPN extent [{first_lpn}, {first_lpn + count}) out of range "
                f"[0, {self.user_pages})"
            )
        l2p = self._l2p
        p2l = self._p2l
        valid = self._valid
        per_block = self._valid_per_block
        ppb = self._ppb
        old_ppns = l2p[first_lpn:first_lpn + count].tolist()
        if count <= self._SCALAR_EXTENT_MAX:
            fresh = 0
            lpn, ppn = first_lpn, first_ppn
            for old in old_ppns:
                if old != UNMAPPED:
                    if not valid[old]:
                        raise RuntimeError("double invalidation in remap_extent")
                    valid[old] = False
                    p2l[old] = UNMAPPED
                    per_block[old // ppb] -= 1
                else:
                    fresh += 1
                l2p[lpn] = ppn
                p2l[ppn] = lpn
                valid[ppn] = True
                lpn += 1
                ppn += 1
            self.mapped_count += fresh
        else:
            old_arr = np.asarray(old_ppns, dtype=np.int64)
            old = old_arr[old_arr != UNMAPPED]
            if old.size:
                if not valid[old].all():
                    raise RuntimeError("double invalidation in remap_extent")
                valid[old] = False
                p2l[old] = UNMAPPED
                np.subtract.at(per_block, old // ppb, 1)
            self.mapped_count += count - int(old.size)
            l2p[first_lpn:first_lpn + count] = np.arange(
                first_ppn, first_ppn + count, dtype=np.int64
            )
            p2l[first_ppn:first_ppn + count] = np.arange(
                first_lpn, first_lpn + count, dtype=np.int64
            )
            valid[first_ppn:first_ppn + count] = True
        per_block[first_ppn // ppb] += count
        return old_ppns

    def load_mapping(self, l2p: np.ndarray) -> None:
        """Install a complete L2P table in one shot (recovery scan).

        ``l2p`` is a full ``user_pages``-long PPN vector (``UNMAPPED``
        where the LPN has no surviving copy); the reverse map, validity
        bitmap, per-block counters and ``mapped_count`` are all rebuilt
        from it.  Replaces any existing state and does **not** fire the
        validity observer -- the recovery path rebuilds its indexes from
        the resulting counters itself.
        """
        if len(l2p) != self.user_pages:
            raise ValueError(
                f"l2p table sized {len(l2p)}, map holds {self.user_pages} LPNs"
            )
        self._l2p[:] = l2p
        self._p2l[:] = UNMAPPED
        self._valid[:] = False
        self._valid_per_block[:] = 0
        lpns = np.flatnonzero(self._l2p != UNMAPPED)
        ppns = self._l2p[lpns]
        if len(np.unique(ppns)) != len(ppns):
            raise ValueError("l2p table maps two LPNs to the same physical page")
        self._p2l[ppns] = lpns
        self._valid[ppns] = True
        np.add.at(self._valid_per_block, ppns // self._ppb, 1)
        self.mapped_count = int(len(lpns))

    def _invalidate_ppn(self, ppn: int) -> None:
        if not self._valid[ppn]:
            raise RuntimeError(f"double invalidation of PPN {ppn}")
        self._valid[ppn] = False
        lpn = int(self._p2l[ppn])
        self._p2l[ppn] = UNMAPPED
        block = ppn // self._ppb
        self._valid_per_block[block] -= 1
        if self._observer is not None:
            self._observer(block, lpn, -1)

    def clear_block(self, block: int) -> None:
        """Reset per-page state of ``block`` after an erase.

        All pages of the block must already be invalid (GC migrates valid
        pages out before erasing); this is asserted to catch GC bugs.
        """
        if self._valid_per_block[block] != 0:
            raise RuntimeError(
                f"erasing block {block} with {self._valid_per_block[block]} valid pages"
            )
        start = block * self.geometry.pages_per_block
        end = start + self.geometry.pages_per_block
        self._p2l[start:end] = UNMAPPED
        self._valid[start:end] = False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def l2p_snapshot(self) -> np.ndarray:
        """Copy of the full LPN→PPN vector (``UNMAPPED`` where unmapped).

        For recovery oracles and crash-sweep verification -- one array
        compare instead of ``user_pages`` :meth:`lookup` calls.
        """
        return self._l2p.copy()

    def lookup(self, lpn: int) -> Optional[int]:
        """Current PPN of ``lpn``, or None if unmapped."""
        self.check_lpn(lpn)
        ppn = int(self._l2p[lpn])
        return None if ppn == UNMAPPED else ppn

    def lpn_of_ppn(self, ppn: int) -> Optional[int]:
        """LPN stored at ``ppn`` if that physical page is valid."""
        lpn = int(self._p2l[ppn])
        return None if lpn == UNMAPPED else lpn

    def mapped_blocks(self, lpns: Iterable[int]) -> np.ndarray:
        """Block index of each currently-mapped LPN in ``lpns``.

        Vectorized batch form of :meth:`lookup` + :meth:`block_of`;
        unmapped LPNs are dropped.  A block appears once per mapped LPN
        it holds, so the result feeds ``np.add.at`` style accumulation.
        """
        arr = np.fromiter(lpns, dtype=np.int64)
        ppns = self._l2p[arr]
        return ppns[ppns != UNMAPPED] // self.geometry.pages_per_block

    def is_valid(self, ppn: int) -> bool:
        return bool(self._valid[ppn])

    def valid_count(self, block: int) -> int:
        return int(self._valid_per_block[block])

    def valid_counts(self) -> np.ndarray:
        """Read-only view of per-block valid-page counters."""
        return self._valid_per_block

    def valid_lpns_in_block(self, block: int) -> Iterator[int]:
        """Yield (page_offset, lpn) for each valid page in ``block``.

        Yields in ascending page order, which keeps GC migration
        deterministic.
        """
        start = block * self.geometry.pages_per_block
        end = start + self.geometry.pages_per_block
        valid = self._valid[start:end]
        lpns = self._p2l[start:end]
        for offset in np.flatnonzero(valid):
            yield int(offset), int(lpns[offset])

    def valid_pages_in_block(self, block: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(page_offsets, lpns)`` arrays for the valid pages of ``block``.

        Batch form of :meth:`valid_lpns_in_block` in the same ascending
        page order (the order GC migration depends on for determinism).
        """
        start = block * self.geometry.pages_per_block
        offsets = np.flatnonzero(self._valid[start:start + self.geometry.pages_per_block])
        return offsets, self._p2l[start + offsets]

    # ------------------------------------------------------------------
    # Batched mutations (GC migration fast path)
    # ------------------------------------------------------------------
    def migrate_pages(
        self,
        src_block: int,
        offsets: np.ndarray,
        lpns: np.ndarray,
        dst_block: int,
        dst_start: int,
    ) -> None:
        """Move valid pages ``offsets`` of ``src_block`` (mapping ``lpns``)
        onto consecutive pages of ``dst_block`` starting at ``dst_start``.

        Array-batched equivalent of per-page ``remap(lpn, new_ppn)`` calls
        during GC migration: the source pages become invalid, the LPNs
        point at the destination pages, ``mapped_count`` is unchanged.
        Deliberately does **not** fire the per-page validity observer --
        the caller (the FTL's batched migration) applies the equivalent
        index updates in bulk itself.
        """
        n = len(offsets)
        if n == 0:
            return
        ppb = self.geometry.pages_per_block
        old_ppns = src_block * ppb + offsets
        if not self._valid[old_ppns].all():
            raise RuntimeError(f"migrating invalid pages out of block {src_block}")
        new_ppns = dst_block * ppb + dst_start + np.arange(n, dtype=np.int64)
        self._valid[old_ppns] = False
        self._p2l[old_ppns] = UNMAPPED
        self._valid[new_ppns] = True
        self._p2l[new_ppns] = lpns
        self._l2p[lpns] = new_ppns
        self._valid_per_block[src_block] -= n
        self._valid_per_block[dst_block] += n

    def invariant_check(self) -> None:
        """Full-state consistency check on batched array ops (O(total pages)).

        Bit-identical verdicts to :meth:`invariant_check_scan`, which is
        kept as the per-LPN executable specification.
        """
        if int(self._valid.sum()) != self.mapped_count:
            raise AssertionError("valid-page population does not match mapped_count")
        per_block = np.add.reduceat(
            self._valid.astype(np.int32),
            np.arange(0, self.geometry.total_pages, self.geometry.pages_per_block),
        )
        if not np.array_equal(per_block, self._valid_per_block):
            raise AssertionError("per-block valid counters out of sync")
        mapped = np.flatnonzero(self._l2p != UNMAPPED)
        if len(mapped):
            ppns = self._l2p[mapped]
            bad = ~self._valid[ppns] | (self._p2l[ppns] != mapped)
            if bad.any():
                raise AssertionError(
                    f"l2p/p2l mismatch at LPN {int(mapped[np.argmax(bad)])}"
                )

    def invariant_check_scan(self) -> None:
        """Per-LPN reference recount of :meth:`invariant_check`."""
        if int(self._valid.sum()) != self.mapped_count:
            raise AssertionError("valid-page population does not match mapped_count")
        per_block = np.add.reduceat(
            self._valid.astype(np.int32),
            np.arange(0, self.geometry.total_pages, self.geometry.pages_per_block),
        )
        if not np.array_equal(per_block, self._valid_per_block):
            raise AssertionError("per-block valid counters out of sync")
        mapped = np.flatnonzero(self._l2p != UNMAPPED)
        for lpn in mapped:
            ppn = int(self._l2p[lpn])
            if not self._valid[ppn] or int(self._p2l[ppn]) != lpn:
                raise AssertionError(f"l2p/p2l mismatch at LPN {lpn}")
