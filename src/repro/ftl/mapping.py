"""Page-level address mapping with validity tracking.

:class:`PageMap` is the FTL's logical heart: the LPN→PPN table, the
reverse PPN→LPN table, a per-page validity bitmap and per-block valid-page
counters.  Out-place updates (the NAND erase-before-write consequence) are
expressed here: remapping an LPN invalidates its previous physical page,
creating the garbage that GC later reclaims.

Physical page numbers are flat: ``ppn = block * pages_per_block + page``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

import numpy as np

from repro.nand.geometry import NandGeometry

#: Sentinel for "unmapped" entries in both translation directions.
UNMAPPED: int = -1


class PageMap:
    """LPN↔PPN translation state.

    Args:
        geometry: NAND geometry (defines the physical page space).
        user_pages: size of the logical page space.
    """

    def __init__(self, geometry: NandGeometry, user_pages: int) -> None:
        if user_pages <= 0:
            raise ValueError(f"user_pages must be positive, got {user_pages}")
        self.geometry = geometry
        self.user_pages = user_pages
        self._l2p = np.full(user_pages, UNMAPPED, dtype=np.int64)
        self._p2l = np.full(geometry.total_pages, UNMAPPED, dtype=np.int64)
        self._valid = np.zeros(geometry.total_pages, dtype=bool)
        self._valid_per_block = np.zeros(geometry.total_blocks, dtype=np.int32)
        #: Number of LPNs currently mapped (the paper's ``Cused`` in pages).
        self.mapped_count = 0
        #: Single observer called as ``(block, lpn, delta)`` on every
        #: per-page validity change (delta is +1 or -1).  The FTL's
        #: victim/SIP indexes subscribe here; None costs one ``is None``
        #: check per mutation.
        self._observer: Optional[Callable[[int, int, int], None]] = None

    def set_valid_observer(
        self, observer: Optional[Callable[[int, int, int], None]]
    ) -> None:
        """Install (or with ``None`` remove) the validity-change observer."""
        self._observer = observer

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def ppn(self, block: int, page: int) -> int:
        return block * self.geometry.pages_per_block + page

    def block_of(self, ppn: int) -> int:
        return ppn // self.geometry.pages_per_block

    def page_of(self, ppn: int) -> int:
        return ppn % self.geometry.pages_per_block

    def check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.user_pages:
            raise IndexError(f"LPN {lpn} out of range [0, {self.user_pages})")

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def remap(self, lpn: int, new_ppn: int) -> Optional[int]:
        """Point ``lpn`` at ``new_ppn``; returns the invalidated old PPN.

        The caller must have already programmed ``new_ppn``.  If the LPN
        was mapped, its old physical page becomes invalid (garbage).
        """
        self.check_lpn(lpn)
        old_ppn = int(self._l2p[lpn])
        if old_ppn != UNMAPPED:
            self._invalidate_ppn(old_ppn)
        else:
            self.mapped_count += 1
        self._l2p[lpn] = new_ppn
        self._p2l[new_ppn] = lpn
        self._valid[new_ppn] = True
        block = self.block_of(new_ppn)
        self._valid_per_block[block] += 1
        if self._observer is not None:
            self._observer(block, lpn, 1)
        return old_ppn if old_ppn != UNMAPPED else None

    def unmap(self, lpn: int) -> Optional[int]:
        """TRIM: drop the mapping of ``lpn``; returns the freed PPN."""
        self.check_lpn(lpn)
        old_ppn = int(self._l2p[lpn])
        if old_ppn == UNMAPPED:
            return None
        self._invalidate_ppn(old_ppn)
        self._l2p[lpn] = UNMAPPED
        self.mapped_count -= 1
        return old_ppn

    def _invalidate_ppn(self, ppn: int) -> None:
        if not self._valid[ppn]:
            raise RuntimeError(f"double invalidation of PPN {ppn}")
        self._valid[ppn] = False
        lpn = int(self._p2l[ppn])
        self._p2l[ppn] = UNMAPPED
        block = self.block_of(ppn)
        self._valid_per_block[block] -= 1
        if self._observer is not None:
            self._observer(block, lpn, -1)

    def clear_block(self, block: int) -> None:
        """Reset per-page state of ``block`` after an erase.

        All pages of the block must already be invalid (GC migrates valid
        pages out before erasing); this is asserted to catch GC bugs.
        """
        if self._valid_per_block[block] != 0:
            raise RuntimeError(
                f"erasing block {block} with {self._valid_per_block[block]} valid pages"
            )
        start = block * self.geometry.pages_per_block
        end = start + self.geometry.pages_per_block
        self._p2l[start:end] = UNMAPPED
        self._valid[start:end] = False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def lookup(self, lpn: int) -> Optional[int]:
        """Current PPN of ``lpn``, or None if unmapped."""
        self.check_lpn(lpn)
        ppn = int(self._l2p[lpn])
        return None if ppn == UNMAPPED else ppn

    def lpn_of_ppn(self, ppn: int) -> Optional[int]:
        """LPN stored at ``ppn`` if that physical page is valid."""
        lpn = int(self._p2l[ppn])
        return None if lpn == UNMAPPED else lpn

    def mapped_blocks(self, lpns: Iterable[int]) -> np.ndarray:
        """Block index of each currently-mapped LPN in ``lpns``.

        Vectorized batch form of :meth:`lookup` + :meth:`block_of`;
        unmapped LPNs are dropped.  A block appears once per mapped LPN
        it holds, so the result feeds ``np.add.at`` style accumulation.
        """
        arr = np.fromiter(lpns, dtype=np.int64)
        ppns = self._l2p[arr]
        return ppns[ppns != UNMAPPED] // self.geometry.pages_per_block

    def is_valid(self, ppn: int) -> bool:
        return bool(self._valid[ppn])

    def valid_count(self, block: int) -> int:
        return int(self._valid_per_block[block])

    def valid_counts(self) -> np.ndarray:
        """Read-only view of per-block valid-page counters."""
        return self._valid_per_block

    def valid_lpns_in_block(self, block: int) -> Iterator[int]:
        """Yield (page_offset, lpn) for each valid page in ``block``.

        Yields in ascending page order, which keeps GC migration
        deterministic.
        """
        start = block * self.geometry.pages_per_block
        end = start + self.geometry.pages_per_block
        valid = self._valid[start:end]
        lpns = self._p2l[start:end]
        for offset in np.flatnonzero(valid):
            yield int(offset), int(lpns[offset])

    def invariant_check(self) -> None:
        """Full-state consistency check (used by tests; O(total pages))."""
        if int(self._valid.sum()) != self.mapped_count:
            raise AssertionError("valid-page population does not match mapped_count")
        per_block = np.add.reduceat(
            self._valid.astype(np.int32),
            np.arange(0, self.geometry.total_pages, self.geometry.pages_per_block),
        )
        if not np.array_equal(per_block, self._valid_per_block):
            raise AssertionError("per-block valid counters out of sync")
        mapped = np.flatnonzero(self._l2p != UNMAPPED)
        for lpn in mapped:
            ppn = int(self._l2p[lpn])
            if not self._valid[ppn] or int(self._p2l[ppn]) != lpn:
                raise AssertionError(f"l2p/p2l mismatch at LPN {lpn}")
