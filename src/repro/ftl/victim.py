"""GC victim-block selection policies.

The paper's extension to the garbage collector (Sec 3.1/3.3) is a modified
victim-selection rule: blocks holding many *soon-to-be-invalidated pages*
(SIP -- dirty data still sitting in the host page cache whose on-flash old
version will be overwritten shortly) are poor victims, because migrating
those pages is work that the imminent overwrite will waste.

This module provides:

* :class:`GreedySelector` -- classic min-valid-count victim selection.
* :class:`CostBenefitSelector` -- age-weighted cost-benefit selection
  (provided for completeness / ablations).
* :class:`SipFilteredSelector` -- the paper's rule: greedy, but skip
  candidates whose valid pages are dominated by SIP entries.  It counts
  filtered candidates, which reproduces the paper's Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

import numpy as np

from repro.ftl.mapping import PageMap


def filter_excluded(
    candidates: np.ndarray, excluded_blocks: Optional[Set[int]]
) -> np.ndarray:
    """Drop candidates the FTL has excluded (e.g. retired bad blocks).

    Retirement can race victim selection inside one recovery episode --
    a block picked up as a candidate may be marked bad before the
    selector runs -- so every selector filters defensively rather than
    trusting the candidate list.
    """
    if not excluded_blocks or len(candidates) == 0:
        return candidates
    mask = np.fromiter(
        (int(block) not in excluded_blocks for block in candidates),
        dtype=bool,
        count=len(candidates),
    )
    return candidates[mask]


@dataclass
class VictimDecision:
    """Outcome of one victim selection.

    Attributes:
        block: chosen victim block, or None if no candidate existed.
        candidates_considered: how many blocks were examined.
        filtered_by_sip: how many better-ranked candidates were skipped
            because of their SIP content (0 for SIP-oblivious selectors).
        valid_pages: valid-page count of the chosen block (its migration
            cost), when a block was chosen.
        score: the selector's ranking score for the chosen block --
            valid count for greedy-family selectors, the cost-benefit
            value for :class:`CostBenefitSelector`, the age for
            :class:`FifoSelector`.  Feeds the decision-audit log.
    """

    block: Optional[int]
    candidates_considered: int = 0
    filtered_by_sip: int = 0
    valid_pages: Optional[int] = None
    score: Optional[float] = None


class VictimSelector:
    """Interface: choose a victim among candidate blocks."""

    #: Human-readable policy name (reports, repr).
    name = "abstract"

    #: True when :meth:`select` accepts ``candidates=None`` plus the
    #: ``valid_index`` / ``sip_overlap`` fast-path keywords.  The FTL
    #: only passes them when this is set, so selector subclasses with
    #: the original signature keep working unchanged.
    uses_valid_index = False

    def select(
        self,
        candidates: np.ndarray,
        page_map: PageMap,
        block_ages: Optional[np.ndarray] = None,
        sip_lpns: Optional[Set[int]] = None,
        excluded_blocks: Optional[Set[int]] = None,
    ) -> VictimDecision:
        """Pick a victim.

        Args:
            candidates: array of block numbers eligible for GC (closed,
                non-free, non-active blocks).
            page_map: mapping state (valid counts, reverse map).
            block_ages: optional per-block "age" proxy (time since the
                block was closed); used by cost-benefit.
            sip_lpns: current soon-to-be-invalidated LPN set; used by the
                SIP-filtered selector.
            excluded_blocks: blocks that must never be chosen (retired
                grown-bad blocks); filtered before ranking.

        Returns:
            a :class:`VictimDecision`; ``block`` is None iff no eligible
            candidate remains.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__}>"


def _considered_via_index(valid_index, excluded_blocks: Optional[Set[int]]) -> int:
    """Candidate population as the scan path would report it.

    The scan path counts ``len(filter_excluded(candidates))``; with the
    index that is the tracked population minus any excluded block that
    is (transiently) still tracked.
    """
    considered = len(valid_index)
    if excluded_blocks:
        considered -= sum(1 for block in excluded_blocks if valid_index.tracks(block))
    return considered


class GreedySelector(VictimSelector):
    """Choose the candidate with the fewest valid pages.

    Ties break toward the lowest block number, keeping runs deterministic.
    """

    name = "greedy"
    uses_valid_index = True

    def select(
        self,
        candidates: Optional[np.ndarray],
        page_map: PageMap,
        block_ages: Optional[np.ndarray] = None,
        sip_lpns: Optional[Set[int]] = None,
        excluded_blocks: Optional[Set[int]] = None,
        valid_index=None,
        sip_overlap=None,
    ) -> VictimDecision:
        if valid_index is not None and candidates is None:
            # Fast path: the FTL's ValidCountIndex already holds the
            # candidates in (count, block) order -- O(1) amortized.
            pick = valid_index.min_block(excluded_blocks)
            if pick is None:
                return VictimDecision(block=None)
            best, valid = pick
            return VictimDecision(
                block=best,
                candidates_considered=_considered_via_index(
                    valid_index, excluded_blocks
                ),
                valid_pages=valid,
                score=float(valid),
            )
        candidates = filter_excluded(candidates, excluded_blocks)
        if len(candidates) == 0:
            return VictimDecision(block=None)
        counts = page_map.valid_counts()[candidates]
        pick = int(np.argmin(counts))
        best = int(candidates[pick])
        valid = int(counts[pick])
        return VictimDecision(
            block=best,
            candidates_considered=len(candidates),
            valid_pages=valid,
            score=float(valid),
        )


class CostBenefitSelector(VictimSelector):
    """Cost-benefit selection: maximise ``(1 - u) * age / (1 + u)``.

    ``u`` is the block's valid-page utilisation.  Favors old blocks with
    moderate garbage over very young nearly-empty blocks whose remaining
    valid pages are likely still hot.  Included as an alternative backend
    for ablation studies; the paper's policies use greedy selection.
    """

    name = "cost-benefit"

    def select(
        self,
        candidates: np.ndarray,
        page_map: PageMap,
        block_ages: Optional[np.ndarray] = None,
        sip_lpns: Optional[Set[int]] = None,
        excluded_blocks: Optional[Set[int]] = None,
    ) -> VictimDecision:
        candidates = filter_excluded(candidates, excluded_blocks)
        if len(candidates) == 0:
            return VictimDecision(block=None)
        ppb = page_map.geometry.pages_per_block
        utilisation = page_map.valid_counts()[candidates] / ppb
        if block_ages is None:
            ages = np.ones(len(candidates), dtype=np.float64)
        else:
            ages = block_ages[candidates].astype(np.float64) + 1.0
        score = (1.0 - utilisation) * ages / (1.0 + utilisation)
        pick = int(np.argmax(score))
        best = int(candidates[pick])
        return VictimDecision(
            block=best,
            candidates_considered=len(candidates),
            valid_pages=page_map.valid_count(best),
            score=float(score[pick]),
        )


class RandomSelector(VictimSelector):
    """Uniform-random victim selection (the classic worst-case baseline).

    Useful to bound how much greedy selection itself contributes before
    attributing WAF differences to GC *timing* policies.
    """

    name = "random"

    def __init__(self, rng: Optional["np.random.Generator"] = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def select(
        self,
        candidates: np.ndarray,
        page_map: PageMap,
        block_ages: Optional[np.ndarray] = None,
        sip_lpns: Optional[Set[int]] = None,
        excluded_blocks: Optional[Set[int]] = None,
    ) -> VictimDecision:
        candidates = filter_excluded(candidates, excluded_blocks)
        if len(candidates) == 0:
            return VictimDecision(block=None)
        pick = int(candidates[int(self._rng.integers(0, len(candidates)))])
        return VictimDecision(
            block=pick,
            candidates_considered=len(candidates),
            valid_pages=page_map.valid_count(pick),
        )


class FifoSelector(VictimSelector):
    """Oldest-closed-block-first selection (log-structured sweep order).

    With ``block_ages`` supplied by the FTL, the candidate closed
    longest ago wins -- the circular-log cleaning order of early FTLs.
    """

    name = "fifo"

    def select(
        self,
        candidates: np.ndarray,
        page_map: PageMap,
        block_ages: Optional[np.ndarray] = None,
        sip_lpns: Optional[Set[int]] = None,
        excluded_blocks: Optional[Set[int]] = None,
    ) -> VictimDecision:
        candidates = filter_excluded(candidates, excluded_blocks)
        if len(candidates) == 0:
            return VictimDecision(block=None)
        if block_ages is None:
            best = int(candidates[0])
            age = None
        else:
            pick = int(np.argmax(block_ages[candidates]))
            best = int(candidates[pick])
            age = float(block_ages[candidates][pick])
        return VictimDecision(
            block=best,
            candidates_considered=len(candidates),
            valid_pages=page_map.valid_count(best),
            score=age,
        )


class SipFilteredSelector(VictimSelector):
    """Greedy selection that avoids SIP-heavy blocks (paper Sec 3.1).

    Candidates are ranked by valid count (greedy order).  Walking that
    ranking, a candidate is *filtered* -- skipped, and counted for
    Table 3 -- when more than ``sip_fraction_threshold`` of its valid
    pages appear in the SIP list.  If every examined candidate is
    filtered, the plain greedy choice is used (GC must still make
    progress).  At most ``max_rank_scan`` candidates are examined so
    selection stays O(k · pages/block).

    Args:
        sip_fraction_threshold: fraction of valid pages that must be SIP
            for a block to be skipped (paper does not give a number; 0.5
            by default, swept in the ablation bench).
        max_rank_scan: bound on the greedy-ranked prefix to examine.
    """

    name = "sip-filtered-greedy"
    uses_valid_index = True

    def __init__(self, sip_fraction_threshold: float = 0.5, max_rank_scan: int = 8) -> None:
        if not 0.0 < sip_fraction_threshold <= 1.0:
            raise ValueError(
                f"sip_fraction_threshold must be in (0, 1], got {sip_fraction_threshold}"
            )
        if max_rank_scan < 1:
            raise ValueError(f"max_rank_scan must be >= 1, got {max_rank_scan}")
        self.sip_fraction_threshold = sip_fraction_threshold
        self.max_rank_scan = max_rank_scan
        #: Cumulative number of candidates skipped due to SIP content.
        self.total_filtered = 0
        #: Cumulative number of selections performed.
        self.total_selections = 0

    def sip_valid_pages(self, block: int, page_map: PageMap, sip_lpns: Set[int]) -> int:
        """Number of valid pages in ``block`` whose LPN is in the SIP list."""
        return sum(1 for _, lpn in page_map.valid_lpns_in_block(block) if lpn in sip_lpns)

    def select(
        self,
        candidates: Optional[np.ndarray],
        page_map: PageMap,
        block_ages: Optional[np.ndarray] = None,
        sip_lpns: Optional[Set[int]] = None,
        excluded_blocks: Optional[Set[int]] = None,
        valid_index=None,
        sip_overlap=None,
    ) -> VictimDecision:
        if valid_index is not None and candidates is None:
            # Fast path: greedy-ranked prefix straight off the index,
            # SIP content off the O(1) overlap counters.
            considered = _considered_via_index(valid_index, excluded_blocks)
            if considered == 0:
                return VictimDecision(block=None)
            ranked = [
                block
                for block, _count in valid_index.ranked_prefix(
                    self.max_rank_scan, excluded_blocks
                )
            ]
        else:
            candidates = filter_excluded(candidates, excluded_blocks)
            if len(candidates) == 0:
                return VictimDecision(block=None)
            considered = len(candidates)
            counts = page_map.valid_counts()[candidates]
            order = np.argsort(counts, kind="stable")
            ranked = [int(candidates[i]) for i in order[: self.max_rank_scan]]
        self.total_selections += 1

        if not sip_lpns:
            valid = page_map.valid_count(ranked[0])
            return VictimDecision(
                block=ranked[0],
                candidates_considered=considered,
                valid_pages=valid,
                score=float(valid),
            )

        ppb = page_map.geometry.pages_per_block
        filtered = 0
        for block in ranked:
            valid = page_map.valid_count(block)
            if valid >= ppb:
                # Ranked ascending by valid count: this and all later
                # candidates hold no garbage.  Stop; fall back to greedy.
                break
            if valid == 0:
                # Nothing to migrate; SIP content is irrelevant.
                self.total_filtered += filtered
                return VictimDecision(
                    block=block,
                    candidates_considered=considered,
                    filtered_by_sip=filtered,
                    valid_pages=valid,
                    score=float(valid),
                )
            if sip_overlap is not None:
                sip_pages = sip_overlap.overlap(block)
            else:
                sip_pages = self.sip_valid_pages(block, page_map, sip_lpns)
            if sip_pages / valid > self.sip_fraction_threshold:
                filtered += 1
                continue
            self.total_filtered += filtered
            return VictimDecision(
                block=block,
                candidates_considered=considered,
                filtered_by_sip=filtered,
                valid_pages=valid,
                score=float(valid),
            )

        # Everything in the scanned prefix was SIP-heavy; fall back to
        # plain greedy so GC still reclaims space.
        self.total_filtered += filtered
        fallback_valid = page_map.valid_count(ranked[0])
        return VictimDecision(
            block=ranked[0],
            candidates_considered=considered,
            filtered_by_sip=filtered,
            valid_pages=fallback_valid,
            score=float(fallback_valid),
        )

    def filtered_fraction(self) -> float:
        """Fraction of selections in which at least the top-ranked greedy
        candidate was skipped -- the paper's Table 3 metric."""
        if self.total_selections == 0:
            return 0.0
        return self.total_filtered / self.total_selections
