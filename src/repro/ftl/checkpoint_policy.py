"""Checkpoint scheduling policies for the durable metadata log.

The FTL asks its policy after every host write whether to write a
mapping checkpoint now.  Two implementations:

* :class:`IntervalCheckpointPolicy` -- the historical behaviour, a fixed
  host-page interval.  Bit-identical to the inline check it replaced.
* :class:`AdaptiveCheckpointPolicy` -- JIT-style scheduling (satellite of
  the paper's Sec 3.3 timing argument): the *recovery-time bound* is the
  total number of pages the power-on tail scan must walk, which grows
  with **all** programs (host + GC migrations + translation writebacks),
  not just host pages.  The adaptive policy triggers on that actual
  accrual, and opportunistically fires *early* during GC quiescence
  (free pool comfortably above the watermark) so checkpoint latency
  lands in quiet periods instead of stacking onto foreground-GC stalls.

  Against an interval policy tuned to guarantee the same worst-case
  tail-scan bound (which must assume worst-case WAF and therefore fire
  on a conservative host-page interval), the adaptive policy writes
  fewer checkpoints -- lower metadata WAF at an equal recovery bound.
  ``tests/ftl/test_checkpoint_policy.py`` measures exactly that.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ftl.ftl import PageMappedFtl


class CheckpointPolicy:
    """Decides when the FTL writes a mapping checkpoint."""

    #: Trigger string recorded in the checkpoint audit record.
    trigger = "policy"

    def should_checkpoint(self, ftl: "PageMappedFtl") -> bool:
        raise NotImplementedError

    def note_checkpoint(self, ftl: "PageMappedFtl") -> None:
        """Called after every checkpoint write (any trigger)."""


class IntervalCheckpointPolicy(CheckpointPolicy):
    """Fixed host-page interval (the historical inline check)."""

    trigger = "interval"

    def __init__(self, interval_pages: int) -> None:
        if interval_pages < 1:
            raise ValueError(f"interval_pages must be >= 1, got {interval_pages}")
        self.interval_pages = interval_pages

    def should_checkpoint(self, ftl: "PageMappedFtl") -> bool:
        return (
            ftl.stats.host_pages_written - ftl._pages_at_last_ckpt
            >= self.interval_pages
        )


class AdaptiveCheckpointPolicy(CheckpointPolicy):
    """Checkpoint on actual tail-scan accrual, early at GC quiescence.

    Args:
        tail_bound_pages: hard ceiling on pages programmed (all streams)
            between checkpoints -- the recovery-time bound.
        slack: fraction of the bound past which a checkpoint may fire
            early if GC is quiescent.
        quiescence_margin: free-pool blocks above the FGC watermark that
            count as "quiet" (no collection imminent).
    """

    trigger = "adaptive"

    def __init__(
        self,
        tail_bound_pages: int,
        slack: float = 0.75,
        quiescence_margin: int = 2,
    ) -> None:
        if tail_bound_pages < 1:
            raise ValueError(
                f"tail_bound_pages must be >= 1, got {tail_bound_pages}"
            )
        if not 0.0 < slack <= 1.0:
            raise ValueError(f"slack must be in (0, 1], got {slack}")
        self.tail_bound_pages = tail_bound_pages
        self.slack = slack
        self.quiescence_margin = quiescence_margin
        self._total_at_last_ckpt = 0

    def _accrued(self, ftl: "PageMappedFtl") -> int:
        return ftl.stats.total_pages_programmed() - self._total_at_last_ckpt

    def should_checkpoint(self, ftl: "PageMappedFtl") -> bool:
        accrued = self._accrued(ftl)
        if accrued >= self.tail_bound_pages:
            return True
        if accrued < int(self.slack * self.tail_bound_pages):
            return False
        # Early-fire only in quiet periods: pool comfortably above the
        # watermark means no foreground collection is imminent, so the
        # checkpoint's metadata program does not stack onto a GC stall.
        return (
            ftl.free_pool_blocks() > ftl.fgc_watermark + self.quiescence_margin
        )

    def note_checkpoint(self, ftl: "PageMappedFtl") -> None:
        self._total_at_last_ckpt = ftl.stats.total_pages_programmed()


def make_checkpoint_policy(
    name: str, interval_pages: int
) -> CheckpointPolicy:
    """Build a policy from the ``SsdConfig.checkpoint_policy`` knob."""
    if name == "interval":
        return IntervalCheckpointPolicy(interval_pages)
    if name == "adaptive":
        return AdaptiveCheckpointPolicy(interval_pages)
    raise ValueError(f"unknown checkpoint policy {name!r}")
