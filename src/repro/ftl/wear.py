"""Wear-aware free-block allocation and static wear levelling.

Two cooperating mechanisms:

* :class:`WearAwareAllocator` keeps the free-block pool as a min-heap
  ordered by erase count, so new write frontiers always land on the
  least-worn free block (dynamic wear levelling).
* :class:`StaticWearLeveler` watches the spread between the most- and
  least-erased blocks and, past a threshold, nominates a cold block
  (low erase count, data rarely rewritten) to be forcibly collected so
  its block re-enters circulation.

The paper's FTL (Fig. 3) includes a wear leveller alongside address
remapping; GC-policy experiments keep it enabled with a wide threshold so
it does not mask GC effects.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Optional

import numpy as np

from repro.nand.endurance import EnduranceModel


class WearAwareAllocator:
    """Free-block pool ordered by erase count (least-worn first).

    Ties break on block number so allocation order is deterministic.
    """

    def __init__(self, endurance: EnduranceModel, initial_free: Iterable[int] = ()) -> None:
        self.endurance = endurance
        self._heap: List[tuple] = []
        self._members = set()
        for block in initial_free:
            self.release(block)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, block: int) -> bool:
        return block in self._members

    def release(self, block: int) -> None:
        """Return an erased block to the pool."""
        if block in self._members:
            raise ValueError(f"block {block} already in the free pool")
        self._members.add(block)
        heapq.heappush(self._heap, (self.endurance.erase_count(block), block))

    def allocate(self) -> Optional[int]:
        """Take the least-worn free block, or None if the pool is empty.

        Heap entries carry the erase count at release time; since blocks
        are only erased *before* release, entries never go stale.
        """
        while self._heap:
            _, block = heapq.heappop(self._heap)
            if block in self._members:
                self._members.discard(block)
                return block
        return None

    def peek_count(self) -> int:
        return len(self._members)


class StaticWearLeveler:
    """Threshold-triggered static wear levelling.

    When ``max(erase_count) - min(erase_count)`` among in-use blocks
    exceeds ``threshold``, :meth:`pick_cold_block` nominates the in-use
    block with the lowest erase count.  The FTL then treats that block as
    a forced GC victim: its (cold) data migrates onto a worn free block
    and the cold block's low-wear cells re-enter the free pool.

    Args:
        endurance: shared erase-count model.
        threshold: allowed erase-count spread before levelling kicks in.
    """

    def __init__(self, endurance: EnduranceModel, threshold: int = 64) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.endurance = endurance
        self.threshold = threshold
        #: Number of levelling migrations triggered (for reports).
        self.invocations = 0

    def needs_levelling(self, in_use_blocks: np.ndarray) -> bool:
        """True when the wear spread across ``in_use_blocks`` is too wide."""
        if len(in_use_blocks) == 0:
            return False
        counts = self.endurance.erase_counts[in_use_blocks]
        return int(counts.max() - counts.min()) > self.threshold

    def pick_cold_block(self, in_use_blocks: np.ndarray) -> Optional[int]:
        """The coldest (least-erased) in-use block, or None if empty."""
        if len(in_use_blocks) == 0:
            return None
        counts = self.endurance.erase_counts[in_use_blocks]
        self.invocations += 1
        return int(in_use_blocks[int(np.argmin(counts))])
