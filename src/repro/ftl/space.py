"""The SSD space model of the paper's Fig. 1.

The total physical capacity splits into a *user capacity* (addressable by
the host) and an *over-provisioning capacity* ``C_OP`` reserved for the
FTL.  At any instant the user capacity further splits into *used* space
(``Cused``, logical pages the host has written) and *unused* space
(``Cunused``).  A background-GC policy is characterised by its reserved
capacity ``Cresv``:

* lazy  -- ``Cresv < C_OP`` (paper's L-BGC uses ``0.5 x C_OP``),
* aggressive -- ``Cresv > C_OP`` (A-BGC uses ``1.5 x C_OP``), capped at
  ``Cunused + C_OP`` so BGC never chases space the host could not use.

:class:`SpaceModel` holds the static split and converts between bytes,
pages and blocks; dynamic quantities (Cused, Cfree) live in the FTL which
owns the mapping state.

This module also hosts the GC hot-path indexes (PERFORMANCE.md):
:class:`ValidCountIndex` keeps victim candidates ordered by valid-page
count so greedy selection stops rescanning every closed block, and
:class:`SipOverlapIndex` keeps per-block counts of valid pages whose LPN
is on the SIP list so the paper's filter stops recounting
``valid_lpns_in_block x sip_lpns`` per GC invocation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.nand.geometry import NandGeometry

#: Second block class for the DFTL mapping tier: blocks are *data* unless
#: they hold at least one valid translation page (the two classes share
#: the physical pool; victim selection ranks both by valid count and the
#: migration path routes each page by its OOB-stamp namespace).
BLOCK_KIND_DATA = 0
BLOCK_KIND_TRANS = 1


class ValidCountIndex:
    """Min-ordered index of GC candidates keyed by ``(valid_count, block)``.

    Tracks the FTL's closed in-use blocks.  The heap holds stale entries
    lazily: each tracked block carries a *generation* (bumped when the
    block is re-closed after an erase) and an entry is live only when
    both its generation and its count match the current tracked state.
    A closed block's valid count only ever decreases (new programs go to
    open frontier blocks), so pushing a fresh entry per decrement keeps
    heap growth bounded by the invalidation rate.

    Ranking is by ascending ``(count, block)``, which is bit-identical
    to ``np.argmin`` / stable ``np.argsort`` over the ascending-block
    candidate array the scan path uses.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, int]] = []
        self._count: Dict[int, int] = {}
        self._gen: Dict[int, int] = {}

    def __len__(self) -> int:
        """Number of tracked (closed, in-use) blocks."""
        return len(self._count)

    def tracks(self, block: int) -> bool:
        return block in self._count

    def count(self, block: int) -> int:
        """Tracked valid count of ``block`` (must be tracked)."""
        return self._count[block]

    def items(self) -> Iterable[Tuple[int, int]]:
        """``(block, count)`` view of the tracked population (tests)."""
        return self._count.items()

    def track(self, block: int, count: int) -> None:
        """Start tracking ``block`` (it was just closed) at ``count``."""
        gen = self._gen.get(block, 0) + 1
        self._gen[block] = gen
        self._count[block] = count
        heapq.heappush(self._heap, (count, block, gen))

    def untrack(self, block: int) -> None:
        """Stop tracking ``block`` (erased or retired); idempotent."""
        self._count.pop(block, None)

    def adjust(self, block: int, delta: int) -> None:
        """Apply a valid-count delta to a tracked block."""
        count = self._count[block] + delta
        self._count[block] = count
        heapq.heappush(self._heap, (count, block, self._gen[block]))

    def adjust_if_tracked(self, block: int, delta: int) -> None:
        """One-lookup :meth:`tracks` + :meth:`adjust` (per-page hot path)."""
        count = self._count.get(block)
        if count is not None:
            count += delta
            self._count[block] = count
            heapq.heappush(self._heap, (count, block, self._gen[block]))

    def make_fused_observer(self, sip: "SipOverlapIndex"):
        """A single ``(block, lpn, delta)`` callable fusing
        :meth:`adjust_if_tracked` with :meth:`SipOverlapIndex.on_valid_delta`.

        The page map fires its observer twice per host write; binding the
        index internals into one closure removes two method-dispatch
        layers from that path.  The bound containers (``_count``,
        ``_gen``, ``_heap``, SIP counters) are created once and mutated
        in place, so the closure never goes stale; the SIP LPN set is
        re-read through ``sip`` because :meth:`SipOverlapIndex.replace`
        rebinds it.
        """
        count_get = self._count.get
        counts = self._count
        gens = self._gen
        heap = self._heap
        heappush = heapq.heappush
        sip_counts = sip._counts

        def observer(block: int, lpn: int, delta: int) -> None:
            count = count_get(block)
            if count is not None:
                count += delta
                counts[block] = count
                heappush(heap, (count, block, gens[block]))
            if lpn in sip.lpns:
                sip_counts[block] += delta

        return observer

    def _is_live(self, entry: Tuple[int, int, int]) -> bool:
        count, block, gen = entry
        return self._gen.get(block) == gen and self._count.get(block) == count

    def peek_min(self) -> Optional[Tuple[int, int]]:
        """``(count, block)`` of the best candidate, or None when empty.

        Dead heads are discarded permanently, so the amortized cost is
        O(log n) per superseded entry.
        """
        heap = self._heap
        while heap and not self._is_live(heap[0]):
            heapq.heappop(heap)
        if not heap:
            return None
        count, block, _gen = heap[0]
        return count, block

    def ranked_prefix(
        self, k: int, excluded: Optional[Set[int]] = None
    ) -> List[Tuple[int, int]]:
        """First ``k`` tracked blocks by ascending ``(count, block)``.

        Returns ``(block, count)`` pairs, skipping ``excluded`` blocks.
        Live entries popped during the walk are pushed back, so the call
        is read-only with O((k + stale) log n) cost.
        """
        exclude = excluded or ()
        heap = self._heap
        popped: List[Tuple[int, int, int]] = []
        result: List[Tuple[int, int]] = []
        seen: Set[int] = set()
        while heap and len(result) < k:
            entry = heapq.heappop(heap)
            if not self._is_live(entry) or entry[1] in seen:
                continue
            popped.append(entry)
            seen.add(entry[1])
            if entry[1] in exclude:
                continue
            result.append((entry[1], entry[0]))
        for entry in popped:
            heapq.heappush(heap, entry)
        return result

    def min_block(self, excluded: Optional[Set[int]] = None) -> Optional[Tuple[int, int]]:
        """Best ``(block, count)`` candidate outside ``excluded``."""
        if not excluded:
            top = self.peek_min()
            return None if top is None else (top[1], top[0])
        ranked = self.ranked_prefix(1, excluded)
        return ranked[0] if ranked else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ValidCountIndex tracked={len(self._count)} heap={len(self._heap)}>"


class SipOverlapIndex:
    """Per-block count of valid pages whose LPN is soon-to-be-invalidated.

    Maintained from two event streams:

    * :meth:`replace` -- the host installed a new SIP list; only the set
      *delta* against the previous list is walked (one mapping lookup
      per changed LPN).
    * :meth:`on_valid_delta` -- a page became valid/invalid; O(1) set
      membership test.

    ``overlap(block)`` then answers the SIP-filtered selector's
    per-candidate question in O(1) instead of O(pages/block).
    """

    def __init__(self, total_blocks: int) -> None:
        self._counts = np.zeros(total_blocks, dtype=np.int32)
        #: The authoritative current SIP LPN set.
        self.lpns: Set[int] = set()

    def overlap(self, block: int) -> int:
        """Valid pages of ``block`` whose LPN is on the SIP list."""
        return int(self._counts[block])

    def snapshot(self) -> np.ndarray:
        """Copy of the per-block overlap counters (tests)."""
        return self._counts.copy()

    def on_valid_delta(self, block: int, lpn: int, delta: int) -> None:
        if lpn in self.lpns:
            self._counts[block] += delta

    def migrate(self, src: int, dst: int, count: int) -> None:
        """Move ``count`` SIP-overlapping pages from ``src`` to ``dst``.

        Batched equivalent of ``count`` paired ``on_valid_delta(src, ·, -1)``
        / ``on_valid_delta(dst, ·, +1)`` calls; used by the FTL's batched
        GC migration, which bypasses the per-page observer.
        """
        if count:
            self._counts[src] -= count
            self._counts[dst] += count

    def remap_batch(self, dest_block: int, gained: int, lost_blocks) -> None:
        """Batched host-remap deltas (per-page observer bypassed).

        ``gained`` SIP pages became valid on ``dest_block``; one SIP page
        became invalid on each entry of ``lost_blocks`` (duplicates mean
        multiple pages on that block).
        """
        if gained:
            self._counts[dest_block] += gained
        for block in lost_blocks:
            self._counts[block] -= 1

    def replace(self, lpns: Iterable[int], page_map) -> Set[int]:
        """Swap in a new SIP list, adjusting counts by the set delta.

        Returns the new set (also stored as :attr:`lpns`).
        """
        new = set(lpns)
        old = self.lpns
        removed = old - new
        if removed:
            np.subtract.at(self._counts, page_map.mapped_blocks(removed), 1)
        added = new - old
        if added:
            np.add.at(self._counts, page_map.mapped_blocks(added), 1)
        self.lpns = new
        return new

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SipOverlapIndex sip={len(self.lpns)}>"


@dataclass(frozen=True)
class SpaceModel:
    """Static capacity split of an SSD.

    Attributes:
        geometry: the NAND geometry beneath.
        user_pages: logical pages exposed to the host.
    """

    geometry: NandGeometry
    user_pages: int

    def __post_init__(self) -> None:
        if self.user_pages <= 0:
            raise ValueError(f"user_pages must be positive, got {self.user_pages}")
        if self.user_pages >= self.geometry.total_pages:
            raise ValueError(
                f"user_pages ({self.user_pages}) must be smaller than the physical "
                f"page count ({self.geometry.total_pages}) to leave OP space"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_op_ratio(cls, geometry: NandGeometry, op_ratio: float = 0.07) -> "SpaceModel":
        """Build a split where ``C_OP = op_ratio x user capacity``.

        The SM843T reserves 7 % of its 240 GB user capacity (16 GB) as OP,
        which is the default here.
        """
        if not 0 < op_ratio < 1:
            raise ValueError(f"op_ratio must be in (0, 1), got {op_ratio}")
        total = geometry.total_pages
        # user * (1 + op_ratio) = total  =>  user = total / (1 + op_ratio)
        user_pages = int(total / (1.0 + op_ratio))
        return cls(geometry=geometry, user_pages=user_pages)

    # ------------------------------------------------------------------
    @property
    def user_bytes(self) -> int:
        return self.user_pages * self.geometry.page_size

    @property
    def op_pages(self) -> int:
        """Over-provisioning capacity ``C_OP`` in pages."""
        return self.geometry.total_pages - self.user_pages

    @property
    def op_bytes(self) -> int:
        return self.op_pages * self.geometry.page_size

    @property
    def op_ratio(self) -> float:
        """OP capacity as a fraction of user capacity."""
        return self.op_pages / self.user_pages

    # ------------------------------------------------------------------
    def reserved_pages(self, cresv_over_op: float) -> int:
        """Pages of the reserved capacity ``Cresv = cresv_over_op x C_OP``.

        ``cresv_over_op`` is the x-axis of the paper's Fig. 2
        (0.5 ... 1.5).
        """
        if cresv_over_op < 0:
            raise ValueError(f"cresv_over_op must be >= 0, got {cresv_over_op}")
        return int(round(cresv_over_op * self.op_pages))

    def clamp_reserved_pages(self, requested: int, used_pages: int) -> int:
        """Apply the paper's cap ``Cresv <= Cunused + C_OP``.

        An aggressive policy must not reserve more space than could ever
        be free given the current amount of live user data.
        """
        unused = max(0, self.user_pages - used_pages)
        return max(0, min(requested, unused + self.op_pages))

    def pages_for_bytes(self, nbytes: int) -> int:
        return self.geometry.pages_for_bytes(nbytes)

    # ------------------------------------------------------------------
    # Degraded capacity (grown bad blocks eat the OP space)
    # ------------------------------------------------------------------
    def effective_op_pages(self, retired_pages: int) -> int:
        """``C_OP`` after ``retired_pages`` of physical capacity retired.

        Grown bad blocks cannot shrink the advertised user capacity, so
        every retired page comes straight out of over-provisioning.
        Clamped at zero: past that point the device can no longer hold
        its advertised capacity and must go read-only.
        """
        if retired_pages < 0:
            raise ValueError(f"retired_pages must be >= 0, got {retired_pages}")
        return max(0, self.op_pages - retired_pages)

    def effective_op_ratio(self, retired_pages: int) -> float:
        """Degraded OP as a fraction of user capacity."""
        return self.effective_op_pages(retired_pages) / self.user_pages

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SpaceModel user={self.user_pages}p op={self.op_pages}p "
            f"({self.op_ratio:.1%})>"
        )
