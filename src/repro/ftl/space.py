"""The SSD space model of the paper's Fig. 1.

The total physical capacity splits into a *user capacity* (addressable by
the host) and an *over-provisioning capacity* ``C_OP`` reserved for the
FTL.  At any instant the user capacity further splits into *used* space
(``Cused``, logical pages the host has written) and *unused* space
(``Cunused``).  A background-GC policy is characterised by its reserved
capacity ``Cresv``:

* lazy  -- ``Cresv < C_OP`` (paper's L-BGC uses ``0.5 x C_OP``),
* aggressive -- ``Cresv > C_OP`` (A-BGC uses ``1.5 x C_OP``), capped at
  ``Cunused + C_OP`` so BGC never chases space the host could not use.

:class:`SpaceModel` holds the static split and converts between bytes,
pages and blocks; dynamic quantities (Cused, Cfree) live in the FTL which
owns the mapping state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nand.geometry import NandGeometry


@dataclass(frozen=True)
class SpaceModel:
    """Static capacity split of an SSD.

    Attributes:
        geometry: the NAND geometry beneath.
        user_pages: logical pages exposed to the host.
    """

    geometry: NandGeometry
    user_pages: int

    def __post_init__(self) -> None:
        if self.user_pages <= 0:
            raise ValueError(f"user_pages must be positive, got {self.user_pages}")
        if self.user_pages >= self.geometry.total_pages:
            raise ValueError(
                f"user_pages ({self.user_pages}) must be smaller than the physical "
                f"page count ({self.geometry.total_pages}) to leave OP space"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_op_ratio(cls, geometry: NandGeometry, op_ratio: float = 0.07) -> "SpaceModel":
        """Build a split where ``C_OP = op_ratio x user capacity``.

        The SM843T reserves 7 % of its 240 GB user capacity (16 GB) as OP,
        which is the default here.
        """
        if not 0 < op_ratio < 1:
            raise ValueError(f"op_ratio must be in (0, 1), got {op_ratio}")
        total = geometry.total_pages
        # user * (1 + op_ratio) = total  =>  user = total / (1 + op_ratio)
        user_pages = int(total / (1.0 + op_ratio))
        return cls(geometry=geometry, user_pages=user_pages)

    # ------------------------------------------------------------------
    @property
    def user_bytes(self) -> int:
        return self.user_pages * self.geometry.page_size

    @property
    def op_pages(self) -> int:
        """Over-provisioning capacity ``C_OP`` in pages."""
        return self.geometry.total_pages - self.user_pages

    @property
    def op_bytes(self) -> int:
        return self.op_pages * self.geometry.page_size

    @property
    def op_ratio(self) -> float:
        """OP capacity as a fraction of user capacity."""
        return self.op_pages / self.user_pages

    # ------------------------------------------------------------------
    def reserved_pages(self, cresv_over_op: float) -> int:
        """Pages of the reserved capacity ``Cresv = cresv_over_op x C_OP``.

        ``cresv_over_op`` is the x-axis of the paper's Fig. 2
        (0.5 ... 1.5).
        """
        if cresv_over_op < 0:
            raise ValueError(f"cresv_over_op must be >= 0, got {cresv_over_op}")
        return int(round(cresv_over_op * self.op_pages))

    def clamp_reserved_pages(self, requested: int, used_pages: int) -> int:
        """Apply the paper's cap ``Cresv <= Cunused + C_OP``.

        An aggressive policy must not reserve more space than could ever
        be free given the current amount of live user data.
        """
        unused = max(0, self.user_pages - used_pages)
        return max(0, min(requested, unused + self.op_pages))

    def pages_for_bytes(self, nbytes: int) -> int:
        return self.geometry.pages_for_bytes(nbytes)

    # ------------------------------------------------------------------
    # Degraded capacity (grown bad blocks eat the OP space)
    # ------------------------------------------------------------------
    def effective_op_pages(self, retired_pages: int) -> int:
        """``C_OP`` after ``retired_pages`` of physical capacity retired.

        Grown bad blocks cannot shrink the advertised user capacity, so
        every retired page comes straight out of over-provisioning.
        Clamped at zero: past that point the device can no longer hold
        its advertised capacity and must go read-only.
        """
        if retired_pages < 0:
            raise ValueError(f"retired_pages must be >= 0, got {retired_pages}")
        return max(0, self.op_pages - retired_pages)

    def effective_op_ratio(self, retired_pages: int) -> float:
        """Degraded OP as a fraction of user capacity."""
        return self.effective_op_pages(retired_pages) / self.user_pages

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SpaceModel user={self.user_pages}p op={self.op_pages}p "
            f"({self.op_ratio:.1%})>"
        )
