"""Crash-consistent FTL recovery from durable metadata + per-page OOB.

After a sudden power-off the controller's DRAM state -- the L2P table,
valid-page counters, victim/SIP indexes, write frontiers, free pool -- is
gone.  Everything needed to rebuild it survives on the media:

* each successfully programmed page carries ``(lpn, seq)`` in its OOB
  slot, stamped atomically with the data (:mod:`repro.nand.array`);
* the NAND metadata region (:mod:`repro.ftl.metastore`) holds mapping
  *checkpoints* (L2P snapshot + write-seq horizon + per-block program
  pointers and erase counts) and the *unmap journal* (TRIM tombstones);
* per-block program pointers and block states are implied by the cell
  contents (modelled directly by the durable int32 vectors);
* erase counts and the factory bad-block table live in flash metadata,
  as on a real drive.

Power-on recovery proceeds checkpoint-first:

1. **Metadata read** -- every surviving metadata record is read (charged
   at tR per metadata page).  Torn records (power cut mid-program) fail
   their CRC and are discarded; a torn *checkpoint* falls back to the
   previous complete generation, and with no complete checkpoint at all
   the scan falls back to the PR-5 full-device sweep.
2. **Tail scan** -- with a checkpoint of horizon ``H``: only pages
   programmed past the checkpoint's per-block program pointers are
   swept (blocks whose erase count moved since the snapshot are rescanned
   whole -- they were erased, and possibly reprogrammed, after it).
3. **Newest-stamp-wins merge** -- tail OOB stamps and journaled
   tombstones with ``seq >= H`` are merged onto the checkpoint's L2P;
   programs and unmaps burn sequence numbers from one shared counter, so
   the highest stamp per LPN is its definitive fate (tombstone -> gone).
   Stamps older than the horizon -- e.g. surfaced by rescanning a block
   whose erase *failed* and left stale cells behind -- are already
   adjudicated by the checkpoint and are ignored.
4. **Torn-page discard** -- a consumed page whose OOB is unstamped was
   interrupted mid-program; it holds no trustworthy data.
5. **Layout re-discovery** -- ERASED blocks form the free pool, OPEN
   blocks (a partially-programmed frontier) resume as the active
   user/GC frontiers, FULL blocks are closed GC candidates, and bad
   blocks not in the factory table are the grown-bad (retired) set.
6. **Index rebuild + invariant check** -- the valid-count and SIP
   indexes are rebuilt from the reconstructed map and the recovered FTL
   must pass the same :meth:`~repro.ftl.ftl.PageMappedFtl.invariant_check`
   as a live one before serving I/O.

Recovery itself is *re-entrant*: the scan is pure reads, so a power cut
during it leaves the media image unchanged and the next power-on simply
re-runs it.  The only durable write recovery may issue is the optional
post-recovery checkpoint (``post_checkpoint=True``); cut mid-write, that
record tears and the *next* recovery falls back exactly as in step 1 --
the nested crash-sweep in :mod:`repro.experiments.crashsweep` verifies
this crash-during-recovery-after-crash path point by point.

What recovery deliberately does *not* restore (it cannot -- the state
was volatile): the host's SIP list, block close times (ages restart at
zero), operation counters and statistics.  TRIM is durable: tombstones
in the unmap journal replay newest-stamp-wins, so a crash between TRIM
and erase no longer resurrects the mapping (the pre-PR-6 caveat).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

import numpy as np

from repro.ftl.ftl import FtlError, PageMappedFtl
from repro.ftl.mapping import TRANS_LPN_BASE, UNMAPPED
from repro.ftl.metastore import (
    KIND_CHECKPOINT,
    KIND_UNMAP,
    CheckpointImage,
    parse_checkpoint,
    parse_tombstones,
)
from repro.ftl.space import SpaceModel
from repro.nand.array import (
    OOB_UNSTAMPED,
    STATE_BAD,
    STATE_ERASED,
    STATE_FULL,
    STATE_OPEN,
    NandArray,
)


class RecoveryError(FtlError):
    """The media image is inconsistent with any reachable FTL state."""


@dataclass
class RecoveredFtlState:
    """Rebuilt FTL state handed to :class:`PageMappedFtl` (``recovered=``).

    Attributes:
        l2p: full LPN→PPN table (``UNMAPPED`` where no copy survived).
        free_blocks: erased blocks for the wear-aware pool.
        closed_blocks: fully-programmed in-use blocks (GC candidates).
        retired_blocks: grown-bad blocks (bad marks absent from the
            factory table).
        active_user_block: resumed user write frontier (None -> allocate
            a fresh one from the pool).
        active_gc_block: resumed GC write frontier (None -> allocate).
        write_seq: next write-sequence stamp (max surviving stamp or
            tombstone + 1), preserving monotonicity across the power
            cycle.
        checkpoint_generation: highest checkpoint generation present in
            the metadata log, torn records included -- the next
            checkpoint must outrank even a torn newest generation.
        gtd: rebuilt global translation directory (dftl mapping mode;
            None for dram recoveries).
        active_trans_block: resumed translation write frontier (dftl
            only; None -> allocate).
    """

    l2p: np.ndarray
    free_blocks: List[int]
    closed_blocks: List[int]
    retired_blocks: Set[int]
    active_user_block: Optional[int]
    active_gc_block: Optional[int]
    write_seq: int
    checkpoint_generation: int = 0
    gtd: Optional[np.ndarray] = None
    active_trans_block: Optional[int] = None


@dataclass
class RecoveryReport:
    """What one recovery scan saw and rebuilt.

    ``duration_ns`` models the power-on-ready cost: one tR read per
    surviving metadata page plus one tR OOB read per swept user page --
    the checkpoint tail on the fast path, every programmed page on the
    full-scan fallback.  ``post_checkpoint_ns`` (programs of the optional
    post-recovery checkpoint) is kept separate: a drive is host-ready
    before it, and writes it lazily afterwards.
    """

    duration_ns: int = 0
    pages_scanned: int = 0
    torn_pages: int = 0
    stale_pages: int = 0
    mapped_lpns: int = 0
    free_blocks: int = 0
    open_blocks: int = 0
    closed_blocks: int = 0
    retired_blocks: int = 0
    write_seq: int = 0
    read_only: bool = False
    #: Metadata pages read (checkpoint + tombstone records).
    meta_pages_read: int = 0
    #: True when no complete checkpoint bounded the scan.
    full_scan: bool = True
    #: Generation of the checkpoint loaded (-1 on the full-scan path).
    checkpoint_generation: int = -1
    #: Journaled unmap entries that won the newest-stamp-wins merge.
    tombstones_replayed: int = 0
    #: Torn/corrupt metadata records discarded (checkpoints + journals).
    torn_meta_records: int = 0
    #: Torn checkpoints skipped before a complete generation was found.
    checkpoint_fallbacks: int = 0
    #: Metadata program time of the optional post-recovery checkpoint.
    post_checkpoint_ns: int = 0
    #: Torn (block, page) addresses, for the audit log (capped by caller).
    torn_addresses: List[Tuple[int, int]] = field(default_factory=list)
    #: Rebuilt global translation directory (dftl scans only).
    gtd: Optional[np.ndarray] = None
    #: Translation-page stamps that won the newest-wins GTD merge.
    trans_pages_mapped: int = 0


def _split_stamps(
    cand: np.ndarray,
    lpns: np.ndarray,
    seqs: np.ndarray,
    user_pages: int,
    trans_pages: int,
    where: str,
) -> Tuple[
    Tuple[np.ndarray, np.ndarray, np.ndarray],
    Tuple[np.ndarray, np.ndarray, np.ndarray],
]:
    """Partition OOB stamps into data and translation namespaces.

    A stamped LPN at or above ``TRANS_LPN_BASE`` encodes the translation
    page ``tvpn = lpn - TRANS_LPN_BASE``; anything else must be a data
    LPN in ``[0, user_pages)``.  With ``trans_pages == 0`` (dram mapping
    mode) a translation stamp is corruption.  Returns
    ``((data_ppns, data_lpns, data_seqs), (trans_ppns, tvpns, trans_seqs))``.
    """
    is_trans = lpns >= TRANS_LPN_BASE
    if is_trans.any() and trans_pages == 0:
        raise RecoveryError(
            f"{where} found a translation-page stamp but the mapping mode "
            "keeps the full map in DRAM -- corrupt stamp or mode mismatch"
        )
    d_lpns = lpns[~is_trans]
    if d_lpns.size and (int(d_lpns.min()) < 0 or int(d_lpns.max()) >= user_pages):
        raise RecoveryError(
            f"{where} found an LPN outside the logical space "
            f"[0, {user_pages}) -- corrupt stamp"
        )
    tvpns = lpns[is_trans] - TRANS_LPN_BASE
    if tvpns.size and int(tvpns.max()) >= trans_pages:
        raise RecoveryError(
            f"{where} found a translation stamp outside the directory "
            f"[0, {trans_pages}) -- corrupt stamp"
        )
    return (
        (cand[~is_trans], d_lpns, seqs[~is_trans]),
        (cand[is_trans], tvpns, seqs[is_trans]),
    )


def scan_oob(
    nand: NandArray, user_pages: int, trans_pages: int = 0
) -> Tuple[np.ndarray, int, RecoveryReport]:
    """Sweep every programmed page's OOB and rebuild the L2P table.

    Returns ``(l2p, write_seq, report)`` where ``report`` carries the
    scan-cost accounting (layout fields are filled by the caller).
    Vectorized over the whole device: the per-page "is it programmed,
    is it stamped, is it the newest copy of its LPN" decisions are a few
    flat-array passes, not a Python loop.

    With ``trans_pages > 0`` (dftl mapping mode) translation-page stamps
    participate in their own newest-wins merge and the rebuilt GTD is
    returned in ``report.gtd``.
    """
    ppb = nand.geometry.pages_per_block
    total_pages = nand.geometry.total_pages
    bad_blocks = nand.block_states == STATE_BAD

    # Page i of block b is programmed iff i < program_ptr[b]; bad blocks
    # are skipped wholesale (their BBT entry says "do not trust").
    page_idx = np.arange(total_pages, dtype=np.int64) % ppb
    programmed = page_idx < np.repeat(
        nand.program_ptr.astype(np.int64), ppb
    )
    programmed &= np.repeat(~bad_blocks, ppb)

    stamped = programmed & (nand.oob_seq != OOB_UNSTAMPED)
    torn_mask = programmed & (nand.oob_seq == OOB_UNSTAMPED)

    cand = np.flatnonzero(stamped)
    (d_cand, d_lpns, d_seqs), (t_cand, tvpns, t_seqs) = _split_stamps(
        cand, nand.oob_lpn[cand], nand.oob_seq[cand], user_pages, trans_pages,
        "OOB sweep",
    )

    l2p = np.full(user_pages, UNMAPPED, dtype=np.int64)
    write_seq = 0
    stale = 0
    if d_cand.size:
        best_seq = np.full(user_pages, OOB_UNSTAMPED, dtype=np.int64)
        np.maximum.at(best_seq, d_lpns, d_seqs)
        winners = best_seq[d_lpns] == d_seqs
        l2p[d_lpns[winners]] = d_cand[winners]
        stale = int(d_cand.size - winners.sum())
        write_seq = int(d_seqs.max()) + 1

    gtd: Optional[np.ndarray] = None
    trans_mapped = 0
    if trans_pages:
        gtd = np.full(trans_pages, UNMAPPED, dtype=np.int64)
        if t_cand.size:
            best_seq = np.full(trans_pages, OOB_UNSTAMPED, dtype=np.int64)
            np.maximum.at(best_seq, tvpns, t_seqs)
            winners = best_seq[tvpns] == t_seqs
            gtd[tvpns[winners]] = t_cand[winners]
            stale += int(t_cand.size - winners.sum())
            write_seq = max(write_seq, int(t_seqs.max()) + 1)
        trans_mapped = int((gtd != UNMAPPED).sum())

    pages_scanned = int(programmed.sum())
    torn = np.flatnonzero(torn_mask)
    report = RecoveryReport(
        duration_ns=pages_scanned * nand.timing.read_ns,
        pages_scanned=pages_scanned,
        torn_pages=int(torn.size),
        stale_pages=stale,
        mapped_lpns=int((l2p != UNMAPPED).sum()),
        write_seq=write_seq,
        torn_addresses=[
            (int(p) // ppb, int(p) % ppb) for p in torn[:64]
        ],
        gtd=gtd,
        trans_pages_mapped=trans_mapped,
    )
    return l2p, write_seq, report


@dataclass
class _DurableMetadata:
    """Parsed contents of the NAND metadata region."""

    checkpoint: Optional[CheckpointImage]
    tomb_lpns: np.ndarray
    tomb_seqs: np.ndarray
    meta_pages: int
    torn_records: int
    checkpoint_fallbacks: int
    max_generation: int


def _load_metadata(nand: NandArray, user_pages: int) -> _DurableMetadata:
    """Read and parse the metadata log, newest complete checkpoint first.

    Torn records parse as ``None`` and are skipped; a torn checkpoint
    counts as a fallback (an older complete generation, or the full
    scan, takes over).  Tombstone vectors are concatenated across all
    surviving journal records -- the merge orders them by stamp, so
    record boundaries carry no meaning.
    """
    records = nand.meta.records
    meta_pages = sum(record.pages for record in records)
    torn_records = 0
    fallbacks = 0
    max_generation = 0

    checkpoint: Optional[CheckpointImage] = None
    for record in reversed(records):
        if record.kind != KIND_CHECKPOINT:
            continue
        max_generation = max(max_generation, record.generation)
        if checkpoint is not None:
            continue
        image = parse_checkpoint(record.payload)
        if image is None:
            torn_records += 1
            fallbacks += 1
            continue
        if (
            image.user_pages != user_pages
            or image.blocks != nand.geometry.total_blocks
            or image.pages_per_block != nand.geometry.pages_per_block
        ):
            raise RecoveryError(
                "checkpoint geometry mismatch: snapshot covers "
                f"{image.user_pages} LPNs / {image.blocks} blocks, device has "
                f"{user_pages} / {nand.geometry.total_blocks}"
            )
        total_pages = nand.geometry.total_pages
        valid_entries = (image.l2p == UNMAPPED) | (
            (image.l2p >= 0) & (image.l2p < total_pages)
        )
        if not valid_entries.all():
            raise RecoveryError("checkpoint L2P entry outside the physical space")
        if image.gtd is not None:
            valid_gtd = (image.gtd == UNMAPPED) | (
                (image.gtd >= 0) & (image.gtd < total_pages)
            )
            if not valid_gtd.all():
                raise RecoveryError(
                    "checkpoint GTD entry outside the physical space"
                )
        checkpoint = image

    lpn_parts: List[np.ndarray] = []
    seq_parts: List[np.ndarray] = []
    for record in records:
        if record.kind != KIND_UNMAP:
            continue
        parsed = parse_tombstones(record.payload)
        if parsed is None:
            torn_records += 1
            continue
        lpns, seqs = parsed
        if lpns.size and (int(lpns.min()) < 0 or int(lpns.max()) >= user_pages):
            raise RecoveryError(
                f"tombstone LPN outside the logical space [0, {user_pages})"
            )
        lpn_parts.append(lpns)
        seq_parts.append(seqs)
    empty = np.empty(0, dtype=np.int64)
    return _DurableMetadata(
        checkpoint=checkpoint,
        tomb_lpns=np.concatenate(lpn_parts) if lpn_parts else empty,
        tomb_seqs=np.concatenate(seq_parts) if seq_parts else empty,
        meta_pages=meta_pages,
        torn_records=torn_records,
        checkpoint_fallbacks=fallbacks,
        max_generation=max_generation,
    )


def _checkpoint_recovery(
    nand: NandArray,
    ckpt: CheckpointImage,
    meta: _DurableMetadata,
    user_pages: int,
    trans_pages: int = 0,
) -> Tuple[np.ndarray, int, RecoveryReport]:
    """Rebuild the L2P (and GTD, in dftl mode) from a checkpoint plus
    the log-tail merge."""
    ppb = nand.geometry.pages_per_block
    total_pages = nand.geometry.total_pages
    horizon = ckpt.write_seq

    ptr_now = nand.program_ptr.astype(np.int64)
    bad = nand.block_states == STATE_BAD
    erase_moved = nand.endurance.erase_counts.astype(np.int64) != ckpt.erase_counts
    regressed = (~bad) & (~erase_moved) & (ptr_now < ckpt.program_ptr)
    if regressed.any():
        raise RecoveryError(
            f"block {int(np.flatnonzero(regressed)[0])} program pointer moved "
            "backwards without an erase -- media image inconsistent with the "
            "checkpoint"
        )
    # Unerased blocks: only pages past the snapshot pointer are new.
    # Erased-since blocks: rescan whole (they may hold fresh data, or --
    # after a *failed* erase that bumped the counter but kept the cells
    # -- stale stamps below the horizon, which the seq filter discards).
    start = np.where(erase_moved, 0, ckpt.program_ptr.astype(np.int64))
    start = np.where(bad, ptr_now, start)
    start = np.minimum(start, ptr_now)

    page_idx = np.arange(total_pages, dtype=np.int64) % ppb
    start_rep = np.repeat(start, ppb)
    end_rep = np.repeat(np.where(bad, np.int64(0), ptr_now), ppb)
    in_tail = (page_idx >= start_rep) & (page_idx < end_rep)

    stamped = in_tail & (nand.oob_seq != OOB_UNSTAMPED)
    torn_mask = in_tail & (nand.oob_seq == OOB_UNSTAMPED)

    cand = np.flatnonzero(stamped)
    (cand, lpns, seqs), (t_cand, tvpns, t_seqs) = _split_stamps(
        cand, nand.oob_lpn[cand], nand.oob_seq[cand], user_pages, trans_pages,
        "tail scan",
    )
    fresh = seqs >= horizon
    stale_trans = 0
    if trans_pages:
        t_fresh = t_seqs >= horizon
        stale_trans = int((~t_fresh).sum())
        t_cand, tvpns, t_seqs = t_cand[t_fresh], tvpns[t_fresh], t_seqs[t_fresh]
    cand, lpns, seqs = cand[fresh], lpns[fresh], seqs[fresh]

    # Tombstones below the horizon are already folded into the
    # checkpoint's L2P; replaying one would wrongly unmap an LPN whose
    # newer (pre-checkpoint) copy has no stamp in the tail.
    tomb_keep = meta.tomb_seqs >= horizon
    tomb_lpns = meta.tomb_lpns[tomb_keep]
    tomb_seqs = meta.tomb_seqs[tomb_keep]

    l2p = ckpt.l2p.copy()
    stale = int((~fresh).sum()) + stale_trans
    tombstones_replayed = 0
    write_seq = horizon
    if cand.size or tomb_lpns.size:
        all_lpns = np.concatenate([lpns, tomb_lpns])
        all_seqs = np.concatenate([seqs, tomb_seqs])
        all_ppns = np.concatenate(
            [cand, np.full(tomb_lpns.size, UNMAPPED, dtype=np.int64)]
        )
        best = np.full(user_pages, OOB_UNSTAMPED, dtype=np.int64)
        np.maximum.at(best, all_lpns, all_seqs)
        winners = best[all_lpns] == all_seqs
        l2p[all_lpns[winners]] = all_ppns[winners]
        stale += int(cand.size - winners[: cand.size].sum())
        tombstones_replayed = int(winners[cand.size:].sum())
        write_seq = max(write_seq, int(all_seqs.max()) + 1)

    # A checkpoint entry can point into a block erased after the
    # snapshot: the page was invalidated (overwrite or TRIM) and the
    # block collected, but the superseding event is not durable -- e.g.
    # its tombstone sat in a torn journal record.  No newer stamp
    # re-bound the LPN above, so the entry dangles at an unprogrammed
    # page (or at another LPN's data if the block was reprogrammed).
    # There is no durable copy of that LPN left; drop the entry rather
    # than resurrect a mapping into garbage.
    mapped = np.flatnonzero(l2p != UNMAPPED)
    if mapped.size:
        ppns = l2p[mapped]
        dangling = (nand.oob_seq[ppns] == OOB_UNSTAMPED) | (
            nand.oob_lpn[ppns] != mapped
        )
        if dangling.any():
            l2p[mapped[dangling]] = UNMAPPED

    # GTD: checkpoint base (a CKP1 base means no translation page was
    # ever flushed as of the snapshot), newest-wins merge of the tail's
    # translation stamps, and the same dangling-entry drop as the L2P --
    # a directory entry must land on a page stamped with its own tvpn.
    gtd: Optional[np.ndarray] = None
    trans_mapped = 0
    if trans_pages:
        if ckpt.gtd is not None:
            if len(ckpt.gtd) != trans_pages:
                raise RecoveryError(
                    f"checkpoint GTD covers {len(ckpt.gtd)} translation "
                    f"pages, device needs {trans_pages}"
                )
            gtd = ckpt.gtd.copy()
        else:
            gtd = np.full(trans_pages, UNMAPPED, dtype=np.int64)
        if t_cand.size:
            best = np.full(trans_pages, OOB_UNSTAMPED, dtype=np.int64)
            np.maximum.at(best, tvpns, t_seqs)
            winners = best[tvpns] == t_seqs
            gtd[tvpns[winners]] = t_cand[winners]
            stale += int(t_cand.size - winners.sum())
            write_seq = max(write_seq, int(t_seqs.max()) + 1)
        tv = np.flatnonzero(gtd != UNMAPPED)
        if tv.size:
            ppns = gtd[tv]
            dangling = (nand.oob_seq[ppns] == OOB_UNSTAMPED) | (
                nand.oob_lpn[ppns] != TRANS_LPN_BASE + tv
            )
            if dangling.any():
                gtd[tv[dangling]] = UNMAPPED
        trans_mapped = int((gtd != UNMAPPED).sum())

    pages_scanned = int(in_tail.sum())
    torn = np.flatnonzero(torn_mask)
    report = RecoveryReport(
        duration_ns=(meta.meta_pages + pages_scanned) * nand.timing.read_ns,
        pages_scanned=pages_scanned,
        torn_pages=int(torn.size),
        stale_pages=stale,
        mapped_lpns=int((l2p != UNMAPPED).sum()),
        write_seq=write_seq,
        meta_pages_read=meta.meta_pages,
        full_scan=False,
        checkpoint_generation=ckpt.generation,
        tombstones_replayed=tombstones_replayed,
        torn_meta_records=meta.torn_records,
        checkpoint_fallbacks=meta.checkpoint_fallbacks,
        torn_addresses=[(int(p) // ppb, int(p) % ppb) for p in torn[:64]],
        gtd=gtd,
        trans_pages_mapped=trans_mapped,
    )
    return l2p, write_seq, report


def _full_scan_recovery(
    nand: NandArray,
    meta: _DurableMetadata,
    user_pages: int,
    trans_pages: int = 0,
) -> Tuple[np.ndarray, int, RecoveryReport]:
    """PR-5 full OOB sweep, extended with tombstone replay.

    With no usable checkpoint every journaled tombstone participates: a
    tombstone beats a surviving stamp of its LPN iff it is newer (the
    shared sequence counter makes the comparison exact).  Translation
    pages are never tombstoned -- the sweep's newest-wins GTD stands.
    """
    l2p, write_seq, report = scan_oob(nand, user_pages, trans_pages)
    if meta.tomb_lpns.size:
        tomb_best = np.full(user_pages, OOB_UNSTAMPED, dtype=np.int64)
        np.maximum.at(tomb_best, meta.tomb_lpns, meta.tomb_seqs)
        mapped = l2p != UNMAPPED
        newest_stamp = np.full(user_pages, OOB_UNSTAMPED, dtype=np.int64)
        # l2p holds, per mapped LPN, the PPN of its newest stamped copy.
        newest_stamp[mapped] = nand.oob_seq[l2p[mapped]]
        killed = mapped & (tomb_best > newest_stamp)
        l2p[killed] = UNMAPPED
        report.tombstones_replayed = int(killed.sum())
        report.mapped_lpns = int((l2p != UNMAPPED).sum())
        write_seq = max(write_seq, int(meta.tomb_seqs.max()) + 1)
    report.write_seq = write_seq
    report.meta_pages_read = meta.meta_pages
    report.torn_meta_records = meta.torn_records
    report.checkpoint_fallbacks = meta.checkpoint_fallbacks
    report.duration_ns += meta.meta_pages * nand.timing.read_ns
    return l2p, write_seq, report


def rediscover_layout(
    nand: NandArray,
) -> Tuple[List[int], List[int], List[int], Set[int]]:
    """Classify every block from its durable physical state.

    Returns ``(free, open, closed, retired)``:

    * ERASED (and good) -> free pool;
    * OPEN -> a write frontier interrupted mid-block (at most two exist:
      the user and GC streams);
    * FULL -> closed, in-use, GC candidate;
    * BAD and not factory-marked -> grown-bad (retired).
    """
    states = nand.block_states
    free = [int(b) for b in np.flatnonzero(states == STATE_ERASED)]
    open_blocks = [int(b) for b in np.flatnonzero(states == STATE_OPEN)]
    closed = [int(b) for b in np.flatnonzero(states == STATE_FULL)]
    grown = (states == STATE_BAD) & ~nand.factory_bad
    retired = {int(b) for b in np.flatnonzero(grown)}
    return free, open_blocks, closed, retired


def recover_ftl(
    nand: NandArray,
    space: SpaceModel,
    post_checkpoint: bool = False,
    **ftl_kwargs,
) -> Tuple[PageMappedFtl, RecoveryReport]:
    """Full post-power-cut recovery: load metadata, scan, rebuild, verify.

    ``nand`` is the powered-back-on array (typically
    :meth:`NandArray.from_durable` over a captured media image);
    ``ftl_kwargs`` are forwarded to :class:`PageMappedFtl` (victim
    selector, watermark, clock, checkpoint interval, registry, ...).
    With ``post_checkpoint=True`` the recovered FTL immediately writes a
    fresh checkpoint (generation past every one seen, torn included), so
    the *next* power-on need not redo this scan; its program cost is
    reported separately in ``post_checkpoint_ns`` because the device is
    already host-ready when it starts.  Returns the recovered FTL --
    already past :meth:`~PageMappedFtl.invariant_check` -- and the scan
    report.

    Raises:
        RecoveryError: the media image cannot be reconciled (corrupt
            OOB stamp, geometry-mismatched checkpoint, or more open
            frontiers than write streams).
    """
    dftl = ftl_kwargs.get("mapping_mode", "dram") == "dftl"
    trans_pages = 0
    if dftl:
        entries_per_tpage = nand.geometry.page_size // 8
        trans_pages = -(-space.user_pages // entries_per_tpage)  # ceil
    meta = _load_metadata(nand, space.user_pages)
    if meta.checkpoint is not None:
        l2p, write_seq, report = _checkpoint_recovery(
            nand, meta.checkpoint, meta, space.user_pages, trans_pages
        )
    else:
        l2p, write_seq, report = _full_scan_recovery(
            nand, meta, space.user_pages, trans_pages
        )
    free, open_blocks, closed, retired = rediscover_layout(nand)

    max_streams = 3 if dftl else 2
    if len(open_blocks) > max_streams:
        raise RecoveryError(
            f"{len(open_blocks)} partially-programmed blocks found; "
            f"the FTL runs exactly {max_streams} write streams"
        )
    # Ascending order is deterministic; which open frontier served which
    # stream is volatile knowledge, and either assignment is valid.  In
    # dftl mode the translation frontier *is* identifiable by its stamp
    # namespace; an open block whose every programmed page tore carries
    # no namespace evidence, so the ascending fallback assigns it last.
    active_trans = None
    if dftl and open_blocks:
        ppb = nand.geometry.pages_per_block
        trans_stamped = [
            b
            for b in open_blocks
            if bool(
                (
                    nand.oob_lpn[b * ppb : b * ppb + int(nand.program_ptr[b])]
                    >= TRANS_LPN_BASE
                ).any()
            )
        ]
        if len(trans_stamped) > 1:
            raise RecoveryError(
                f"{len(trans_stamped)} open blocks carry translation stamps; "
                "the FTL runs exactly one translation stream"
            )
        if trans_stamped:
            active_trans = trans_stamped[0]
        elif len(open_blocks) == 3:
            active_trans = open_blocks[-1]
    data_open = [b for b in open_blocks if b != active_trans]
    active_user = data_open[0] if len(data_open) >= 1 else None
    active_gc = data_open[1] if len(data_open) >= 2 else None

    recovered = RecoveredFtlState(
        l2p=l2p,
        free_blocks=free,
        closed_blocks=closed,
        retired_blocks=retired,
        active_user_block=active_user,
        active_gc_block=active_gc,
        write_seq=write_seq,
        checkpoint_generation=meta.max_generation,
        gtd=report.gtd,
        active_trans_block=active_trans,
    )
    ftl = PageMappedFtl(nand, space, recovered=recovered, **ftl_kwargs)
    ftl.invariant_check()

    report.free_blocks = ftl.free_pool_blocks()
    report.open_blocks = len(open_blocks)
    report.closed_blocks = len(closed)
    report.retired_blocks = len(retired)
    report.read_only = ftl.read_only
    if post_checkpoint and not ftl.read_only:
        report.post_checkpoint_ns = ftl.write_checkpoint(trigger="recovery")
    return ftl, report
