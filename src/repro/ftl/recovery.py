"""Crash-consistent FTL recovery from per-page OOB metadata.

After a sudden power-off the controller's DRAM state -- the L2P table,
valid-page counters, victim/SIP indexes, write frontiers, free pool -- is
gone.  Everything needed to rebuild it survives on the media:

* each successfully programmed page carries ``(lpn, seq)`` in its OOB
  slot, stamped atomically with the data (:mod:`repro.nand.array`);
* per-block program pointers and block states are implied by the cell
  contents (modelled directly by the durable int32 vectors);
* erase counts and the factory bad-block table live in flash metadata,
  as on a real drive.

The scan implements the classic page-mapped recovery protocol:

1. **Full-device OOB sweep** -- read the OOB of every programmed page of
   every good block (the dominant recovery cost; charged at tR per page
   in :attr:`RecoveryReport.duration_ns`).
2. **Torn-page discard** -- a consumed page whose OOB is unstamped was
   interrupted mid-program (power cut or status-fail); it holds no
   trustworthy data and is treated as garbage.
3. **Newest-copy-wins mapping** -- for each LPN seen in OOB, the copy
   with the highest write-sequence stamp is the live one; older copies
   are stale garbage from out-place updates.  Stamps are globally unique
   (the FTL burns one per successful program), so there are no ties.
4. **Layout re-discovery** -- ERASED blocks form the free pool, OPEN
   blocks (a partially-programmed frontier) resume as the active
   user/GC frontiers, FULL blocks are closed GC candidates, and bad
   blocks not in the factory table are the grown-bad (retired) set.
5. **Index rebuild + invariant check** -- the valid-count and SIP
   indexes are rebuilt from the reconstructed map and the recovered FTL
   must pass the same :meth:`~repro.ftl.ftl.PageMappedFtl.invariant_check`
   as a live one before serving I/O.

What recovery deliberately does *not* restore (it cannot -- the state
was volatile): the host's SIP list, block close times (ages restart at
zero), operation counters and statistics.  TRIM is the one modelled
divergence: an unmap has no durable NAND effect until the block holding
the old copy is erased, so a crash between TRIM and erase resurrects the
mapping -- exactly as on real page-mapped FTLs without a persistent
journal (see DESIGN.md, "Power loss & recovery").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

import numpy as np

from repro.ftl.ftl import FtlError, PageMappedFtl
from repro.ftl.mapping import UNMAPPED
from repro.ftl.space import SpaceModel
from repro.nand.array import (
    OOB_UNSTAMPED,
    STATE_BAD,
    STATE_ERASED,
    STATE_FULL,
    STATE_OPEN,
    NandArray,
)


class RecoveryError(FtlError):
    """The media image is inconsistent with any reachable FTL state."""


@dataclass
class RecoveredFtlState:
    """Rebuilt FTL state handed to :class:`PageMappedFtl` (``recovered=``).

    Attributes:
        l2p: full LPN→PPN table (``UNMAPPED`` where no copy survived).
        free_blocks: erased blocks for the wear-aware pool.
        closed_blocks: fully-programmed in-use blocks (GC candidates).
        retired_blocks: grown-bad blocks (bad marks absent from the
            factory table).
        active_user_block: resumed user write frontier (None -> allocate
            a fresh one from the pool).
        active_gc_block: resumed GC write frontier (None -> allocate).
        write_seq: next write-sequence stamp (max surviving stamp + 1),
            preserving monotonicity across the power cycle.
    """

    l2p: np.ndarray
    free_blocks: List[int]
    closed_blocks: List[int]
    retired_blocks: Set[int]
    active_user_block: Optional[int]
    active_gc_block: Optional[int]
    write_seq: int


@dataclass
class RecoveryReport:
    """What one recovery scan saw and rebuilt.

    ``duration_ns`` models the scan cost: one tR OOB read per programmed
    page of every good block (the full-device sweep real controllers pay
    without a persisted mapping journal).
    """

    duration_ns: int = 0
    pages_scanned: int = 0
    torn_pages: int = 0
    stale_pages: int = 0
    mapped_lpns: int = 0
    free_blocks: int = 0
    open_blocks: int = 0
    closed_blocks: int = 0
    retired_blocks: int = 0
    write_seq: int = 0
    read_only: bool = False
    #: Torn (block, page) addresses, for the audit log (capped by caller).
    torn_addresses: List[Tuple[int, int]] = field(default_factory=list)


def scan_oob(
    nand: NandArray, user_pages: int
) -> Tuple[np.ndarray, int, RecoveryReport]:
    """Sweep every programmed page's OOB and rebuild the L2P table.

    Returns ``(l2p, write_seq, report)`` where ``report`` carries the
    scan-cost accounting (layout fields are filled by the caller).
    Vectorized over the whole device: the per-page "is it programmed,
    is it stamped, is it the newest copy of its LPN" decisions are a few
    flat-array passes, not a Python loop.
    """
    ppb = nand.geometry.pages_per_block
    total_pages = nand.geometry.total_pages
    bad_blocks = nand.block_states == STATE_BAD

    # Page i of block b is programmed iff i < program_ptr[b]; bad blocks
    # are skipped wholesale (their BBT entry says "do not trust").
    page_idx = np.arange(total_pages, dtype=np.int64) % ppb
    programmed = page_idx < np.repeat(
        nand.program_ptr.astype(np.int64), ppb
    )
    programmed &= np.repeat(~bad_blocks, ppb)

    stamped = programmed & (nand.oob_seq != OOB_UNSTAMPED)
    torn_mask = programmed & (nand.oob_seq == OOB_UNSTAMPED)

    cand = np.flatnonzero(stamped)
    lpns = nand.oob_lpn[cand]
    seqs = nand.oob_seq[cand]
    if lpns.size and (int(lpns.min()) < 0 or int(lpns.max()) >= user_pages):
        raise RecoveryError(
            "OOB sweep found an LPN outside the logical space "
            f"[0, {user_pages}) -- corrupt stamp"
        )

    l2p = np.full(user_pages, UNMAPPED, dtype=np.int64)
    write_seq = 0
    stale = 0
    if cand.size:
        best_seq = np.full(user_pages, OOB_UNSTAMPED, dtype=np.int64)
        np.maximum.at(best_seq, lpns, seqs)
        winners = best_seq[lpns] == seqs
        l2p[lpns[winners]] = cand[winners]
        stale = int(cand.size - winners.sum())
        write_seq = int(seqs.max()) + 1

    pages_scanned = int(programmed.sum())
    torn = np.flatnonzero(torn_mask)
    report = RecoveryReport(
        duration_ns=pages_scanned * nand.timing.read_ns,
        pages_scanned=pages_scanned,
        torn_pages=int(torn.size),
        stale_pages=stale,
        mapped_lpns=int((l2p != UNMAPPED).sum()),
        write_seq=write_seq,
        torn_addresses=[
            (int(p) // ppb, int(p) % ppb) for p in torn[:64]
        ],
    )
    return l2p, write_seq, report


def rediscover_layout(
    nand: NandArray,
) -> Tuple[List[int], List[int], List[int], Set[int]]:
    """Classify every block from its durable physical state.

    Returns ``(free, open, closed, retired)``:

    * ERASED (and good) -> free pool;
    * OPEN -> a write frontier interrupted mid-block (at most two exist:
      the user and GC streams);
    * FULL -> closed, in-use, GC candidate;
    * BAD and not factory-marked -> grown-bad (retired).
    """
    states = nand.block_states
    free = [int(b) for b in np.flatnonzero(states == STATE_ERASED)]
    open_blocks = [int(b) for b in np.flatnonzero(states == STATE_OPEN)]
    closed = [int(b) for b in np.flatnonzero(states == STATE_FULL)]
    grown = (states == STATE_BAD) & ~nand.factory_bad
    retired = {int(b) for b in np.flatnonzero(grown)}
    return free, open_blocks, closed, retired


def recover_ftl(
    nand: NandArray,
    space: SpaceModel,
    **ftl_kwargs,
) -> Tuple[PageMappedFtl, RecoveryReport]:
    """Full post-power-cut recovery: scan, rebuild, verify.

    ``nand`` is the powered-back-on array (typically
    :meth:`NandArray.from_durable` over a captured media image);
    ``ftl_kwargs`` are forwarded to :class:`PageMappedFtl` (victim
    selector, watermark, clock, registry, ...).  Returns the recovered
    FTL -- already past :meth:`~PageMappedFtl.invariant_check` -- and the
    scan report.

    Raises:
        RecoveryError: the media image cannot be reconciled (corrupt
            OOB stamp or more open frontiers than write streams).
    """
    l2p, write_seq, report = scan_oob(nand, space.user_pages)
    free, open_blocks, closed, retired = rediscover_layout(nand)

    if len(open_blocks) > 2:
        raise RecoveryError(
            f"{len(open_blocks)} partially-programmed blocks found; "
            "the FTL runs exactly two write streams"
        )
    # Ascending order is deterministic; which open frontier served which
    # stream is volatile knowledge, and either assignment is valid.
    active_user = open_blocks[0] if len(open_blocks) >= 1 else None
    active_gc = open_blocks[1] if len(open_blocks) >= 2 else None

    recovered = RecoveredFtlState(
        l2p=l2p,
        free_blocks=free,
        closed_blocks=closed,
        retired_blocks=retired,
        active_user_block=active_user,
        active_gc_block=active_gc,
        write_seq=write_seq,
    )
    ftl = PageMappedFtl(nand, space, recovered=recovered, **ftl_kwargs)
    ftl.invariant_check()

    report.free_blocks = ftl.free_pool_blocks()
    report.open_blocks = len(open_blocks)
    report.closed_blocks = len(closed)
    report.retired_blocks = len(retired)
    report.read_only = ftl.read_only
    return ftl, report
