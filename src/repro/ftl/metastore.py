"""Durable FTL metadata on NAND: mapping checkpoints and the unmap journal.

PR 5 made user data crash-consistent by stamping ``(lpn, write_seq)``
into every page's OOB area, but all *metadata* still lived in DRAM:
power-on recovery had to scan every programmed page, and TRIM was a
DRAM-only edit that a crash silently undid (the "resurrect after TRIM"
caveat of DESIGN.md §8).  This module adds the flash-resident metadata
plane that fixes both:

* **Checkpoint records** snapshot the full L2P table together with the
  write-sequence *horizon* ``H`` (the next sequence number at snapshot
  time) and the per-block program pointers / erase counts.  Recovery
  loads the newest complete checkpoint and only scans pages programmed
  past those pointers -- every mapping change after the snapshot is
  represented by an OOB stamp or a tombstone with ``seq >= H``.
* **Tombstone records** journal TRIM (and GC data-loss) unmaps.  Each
  tombstoned LPN burns a sequence number from the *same* monotonic
  counter as page programs, so programs and unmaps form one total order
  and recovery replays them newest-stamp-wins.

Records live in a small dedicated metadata region attached to
:class:`repro.nand.array.NandArray` -- physically separate from the
user-addressable blocks (real drives reserve root/metadata blocks the
same way), so user-capacity accounting, GC and the free pool are
untouched.  Every record is self-describing (magic + element counts),
CRC-checksummed and, for checkpoints, generation-stamped; a record cut
mid-write parses as *torn* and is ignored, which is exactly the
fallback-to-previous-generation behaviour re-entrant recovery needs.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

#: Record kinds stored in the metadata log.
KIND_CHECKPOINT = "checkpoint"
KIND_UNMAP = "unmap"

#: On-NAND magics double as format-version tags (bump the digit to rev).
#: CKP1 carries the L2P-only image (dram mapping mode); CKP2 appends the
#: global translation directory for the dftl mapping mode.  Both parse.
MAGIC_CHECKPOINT = b"CKP1"
MAGIC_CHECKPOINT2 = b"CKP2"
MAGIC_TOMBSTONE = b"TMB1"

#: magic, generation, write_seq horizon, user_pages, blocks, pages_per_block
_CKPT_HEADER = struct.Struct("<4sQQQQI")
#: CKP2 extension, directly after the common header: GTD entry count.
_CKPT2_GTD = struct.Struct("<Q")
#: magic, tombstone entry count
_TOMB_HEADER = struct.Struct("<4sI")
#: trailing CRC32 of everything before it
_CRC = struct.Struct("<I")


@dataclass(frozen=True)
class MetaRecord:
    """One append-only record in the NAND metadata log.

    ``payload`` holds the full serialized bytes for a complete record;
    a *torn* record (power cut mid-program) keeps only the pages that
    landed before the cut and is marked ``torn`` -- its payload will
    fail the CRC and parse as ``None``.
    """

    kind: str
    seq: int  # append order within the log (display/debug only)
    generation: int  # checkpoint generation; 0 for unmap records
    payload: bytes
    pages: int  # metadata pages the surviving payload occupies
    torn: bool = False


@dataclass(frozen=True)
class CheckpointImage:
    """A parsed, CRC-verified checkpoint record."""

    generation: int
    #: Write-sequence horizon ``H``: every sequence number ``< H`` was
    #: burned before this snapshot; every post-snapshot program or
    #: tombstone carries ``seq >= H``.
    write_seq: int
    pages_per_block: int
    l2p: np.ndarray  # int64[user_pages], UNMAPPED where unmapped
    program_ptr: np.ndarray  # int32[blocks] at snapshot time
    erase_counts: np.ndarray  # int64[blocks] at snapshot time
    #: Global translation directory (dftl mapping mode, CKP2 records):
    #: int64[trans_pages], PPN of each translation page's newest flushed
    #: copy.  None for CKP1 (dram) checkpoints.
    gtd: Optional[np.ndarray] = None

    @property
    def user_pages(self) -> int:
        return int(len(self.l2p))

    @property
    def blocks(self) -> int:
        return int(len(self.program_ptr))


def build_checkpoint(
    generation: int,
    write_seq: int,
    l2p: np.ndarray,
    program_ptr: np.ndarray,
    erase_counts: np.ndarray,
    pages_per_block: int,
    gtd: Optional[np.ndarray] = None,
) -> bytes:
    """Serialize a checkpoint record (header | arrays | CRC32).

    Without ``gtd`` the record is byte-identical to the historical CKP1
    format; with it, a CKP2 record appends the GTD entry count and
    vector between the header and the L2P table.
    """
    if len(program_ptr) != len(erase_counts):
        raise ValueError("program_ptr and erase_counts must cover the same blocks")
    body = _CKPT_HEADER.pack(
        MAGIC_CHECKPOINT if gtd is None else MAGIC_CHECKPOINT2,
        generation,
        write_seq,
        len(l2p),
        len(program_ptr),
        pages_per_block,
    )
    if gtd is not None:
        body += _CKPT2_GTD.pack(len(gtd))
        body += np.ascontiguousarray(gtd, dtype=np.int64).tobytes()
    body += np.ascontiguousarray(l2p, dtype=np.int64).tobytes()
    body += np.ascontiguousarray(program_ptr, dtype=np.int32).tobytes()
    body += np.ascontiguousarray(erase_counts, dtype=np.int64).tobytes()
    return body + _CRC.pack(zlib.crc32(body))


def parse_checkpoint(payload: bytes) -> Optional[CheckpointImage]:
    """Parse a checkpoint payload; ``None`` for torn/corrupt records."""
    if len(payload) < _CKPT_HEADER.size + _CRC.size:
        return None
    magic, generation, write_seq, user_pages, blocks, ppb = _CKPT_HEADER.unpack_from(
        payload
    )
    if magic not in (MAGIC_CHECKPOINT, MAGIC_CHECKPOINT2):
        return None
    offset = _CKPT_HEADER.size
    gtd_entries = 0
    if magic == MAGIC_CHECKPOINT2:
        if len(payload) < offset + _CKPT2_GTD.size:
            return None
        (gtd_entries,) = _CKPT2_GTD.unpack_from(payload, offset)
        offset += _CKPT2_GTD.size
    expected = (
        offset + 8 * gtd_entries + 8 * user_pages + 4 * blocks + 8 * blocks + _CRC.size
    )
    if len(payload) != expected:
        return None
    (crc,) = _CRC.unpack_from(payload, len(payload) - _CRC.size)
    if crc != zlib.crc32(payload[: -_CRC.size]):
        return None
    gtd = None
    if magic == MAGIC_CHECKPOINT2:
        gtd = np.frombuffer(
            payload, dtype=np.int64, count=gtd_entries, offset=offset
        ).copy()
        offset += 8 * gtd_entries
    l2p = np.frombuffer(payload, dtype=np.int64, count=user_pages, offset=offset).copy()
    offset += 8 * user_pages
    ptr = np.frombuffer(payload, dtype=np.int32, count=blocks, offset=offset).copy()
    offset += 4 * blocks
    erases = np.frombuffer(payload, dtype=np.int64, count=blocks, offset=offset).copy()
    return CheckpointImage(
        generation=int(generation),
        write_seq=int(write_seq),
        pages_per_block=int(ppb),
        l2p=l2p,
        program_ptr=ptr,
        erase_counts=erases,
        gtd=gtd,
    )


def build_tombstones(lpns: Sequence[int], seqs: Sequence[int]) -> bytes:
    """Serialize an unmap-journal record: parallel (lpn, seq) vectors."""
    if len(lpns) != len(seqs):
        raise ValueError("lpns and seqs must be the same length")
    body = _TOMB_HEADER.pack(MAGIC_TOMBSTONE, len(lpns))
    body += np.ascontiguousarray(lpns, dtype=np.int64).tobytes()
    body += np.ascontiguousarray(seqs, dtype=np.int64).tobytes()
    return body + _CRC.pack(zlib.crc32(body))


def parse_tombstones(payload: bytes) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Parse a tombstone payload into ``(lpns, seqs)``; ``None`` if torn."""
    if len(payload) < _TOMB_HEADER.size + _CRC.size:
        return None
    magic, count = _TOMB_HEADER.unpack_from(payload)
    if magic != MAGIC_TOMBSTONE:
        return None
    if len(payload) != _TOMB_HEADER.size + 16 * count + _CRC.size:
        return None
    (crc,) = _CRC.unpack_from(payload, len(payload) - _CRC.size)
    if crc != zlib.crc32(payload[: -_CRC.size]):
        return None
    offset = _TOMB_HEADER.size
    lpns = np.frombuffer(payload, dtype=np.int64, count=count, offset=offset).copy()
    seqs = np.frombuffer(
        payload, dtype=np.int64, count=count, offset=offset + 8 * count
    ).copy()
    return lpns, seqs


def _peek_tombstone_max_seq(payload: bytes) -> Optional[int]:
    parsed = parse_tombstones(payload)
    if parsed is None or parsed[1].size == 0:
        return None
    return int(parsed[1].max())


class MetaLog:
    """The NAND-resident metadata log.

    An ordered append-only sequence of :class:`MetaRecord`; writes are
    charged by the FTL at ``pages * program_ns`` and reads at
    ``pages * read_ns`` during recovery, so metadata traffic shows up in
    simulated time exactly like user traffic.  The log compacts itself
    at checkpoint time: the two newest complete checkpoint generations
    are retained (the newest may tear, so its predecessor must survive)
    plus every tombstone record still unresolved at the *oldest* kept
    horizon.
    """

    def __init__(self, page_size: int) -> None:
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self._records: List[MetaRecord] = []
        self._next_seq = 0
        #: Lifetime metadata pages programmed (compaction never lowers it).
        self.pages_written = 0

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def append(self, kind: str, payload: bytes, generation: int = 0) -> MetaRecord:
        """Durably append one record; returns it (with its page cost)."""
        if kind not in (KIND_CHECKPOINT, KIND_UNMAP):
            raise ValueError(f"unknown metadata record kind {kind!r}")
        pages = max(1, -(-len(payload) // self.page_size))
        record = MetaRecord(
            kind=kind,
            seq=self._next_seq,
            generation=generation,
            payload=payload,
            pages=pages,
        )
        self._next_seq += 1
        self._records.append(record)
        self.pages_written += pages
        return record

    def tear_last(self, keep_pages: Optional[int] = None) -> Optional[MetaRecord]:
        """Emulate power loss mid-way through the newest record's program.

        Keeps only ``keep_pages`` of the record's pages (default: half,
        clamped so at least one page is lost) and marks it torn; its
        truncated payload no longer passes the CRC, so recovery discards
        it.  Returns the torn record, or ``None`` on an empty log.
        """
        if not self._records:
            return None
        record = self._records[-1]
        if keep_pages is None:
            keep_pages = record.pages // 2
        keep_pages = max(0, min(keep_pages, record.pages - 1))
        torn = replace(
            record,
            payload=record.payload[: keep_pages * self.page_size],
            pages=max(1, keep_pages),
            torn=True,
        )
        self._records[-1] = torn
        return torn

    def compact(self, keep_generations: int = 2) -> int:
        """Drop records made obsolete by newer complete checkpoints.

        Retains the ``keep_generations`` newest *complete* checkpoints,
        and every tombstone record whose newest entry is at or past the
        oldest retained horizon (older tombstones are already folded
        into every surviving checkpoint's L2P).  Torn records and
        checkpoints older than the retained set are dropped.  With no
        complete checkpoint, nothing is dropped.  Returns the number of
        records removed.
        """
        if keep_generations < 1:
            raise ValueError("keep_generations must be >= 1")
        kept_horizons = []
        keep_ckpts = set()
        for record in reversed(self._records):
            if record.kind != KIND_CHECKPOINT or len(kept_horizons) >= keep_generations:
                continue
            image = parse_checkpoint(record.payload)
            if image is None:
                continue  # torn checkpoint: never worth keeping
            keep_ckpts.add(record.seq)
            kept_horizons.append(image.write_seq)
        if not kept_horizons:
            return 0
        oldest_horizon = min(kept_horizons)
        survivors = []
        for record in self._records:
            if record.kind == KIND_CHECKPOINT:
                if record.seq in keep_ckpts:
                    survivors.append(record)
            else:
                max_seq = _peek_tombstone_max_seq(record.payload)
                if max_seq is not None and max_seq >= oldest_horizon:
                    survivors.append(record)
        dropped = len(self._records) - len(survivors)
        self._records = survivors
        return dropped

    # ------------------------------------------------------------------
    # Queries / durability capture
    # ------------------------------------------------------------------
    @property
    def records(self) -> Tuple[MetaRecord, ...]:
        return tuple(self._records)

    def pages_held(self) -> int:
        """Metadata pages a recovery scan must read (post-compaction)."""
        return sum(record.pages for record in self._records)

    def capture(self) -> Tuple[MetaRecord, ...]:
        """Immutable snapshot for :class:`NandDurableState`."""
        return tuple(self._records)

    @classmethod
    def restore(
        cls, records: Sequence[MetaRecord], page_size: int
    ) -> "MetaLog":
        log = cls(page_size)
        log._records = list(records)
        log._next_seq = max((r.seq for r in records), default=-1) + 1
        log.pages_written = sum(r.pages for r in records)
        return log

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        ckpts = sum(1 for r in self._records if r.kind == KIND_CHECKPOINT)
        return (
            f"<MetaLog records={len(self._records)} checkpoints={ckpts} "
            f"pages={self.pages_held()}>"
        )


__all__ = [
    "KIND_CHECKPOINT",
    "KIND_UNMAP",
    "MAGIC_CHECKPOINT",
    "MAGIC_CHECKPOINT2",
    "MetaRecord",
    "CheckpointImage",
    "MetaLog",
    "build_checkpoint",
    "parse_checkpoint",
    "build_tombstones",
    "parse_tombstones",
]
