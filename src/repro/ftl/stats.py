"""FTL statistics: write amplification, GC activity, stall accounting.

WAF (write amplification factor) is the paper's lifetime proxy:

    WAF = (host page programs + GC migration programs) / host page programs

Every counter here is monotonically increasing; snapshots and deltas let
experiments measure steady-state windows (after the device is pre-filled)
rather than the cold ramp-up.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class FtlStats:
    """Monotonic counters maintained by :class:`~repro.ftl.ftl.PageMappedFtl`."""

    #: Pages programmed on behalf of host writes.
    host_pages_written: int = 0
    #: Pages programmed by GC valid-page migration.
    gc_pages_migrated: int = 0
    #: Pages read by GC before migration.
    gc_pages_read: int = 0
    #: Blocks erased (all causes).
    blocks_erased: int = 0
    #: Host pages served by read requests.
    host_pages_read: int = 0
    #: TRIMmed logical pages.
    pages_trimmed: int = 0

    #: Durable-metadata traffic (repro.ftl.metastore).
    #: Mapping checkpoints written to the NAND metadata region.
    checkpoints_written: int = 0
    #: Metadata pages programmed (checkpoint + tombstone records).
    meta_pages_written: int = 0
    #: Unmap tombstones journaled (TRIMs plus GC data-loss unmaps).
    tombstones_journaled: int = 0
    #: Reserved-block erases triggered by metadata-ring wrap-around.
    meta_block_erases: int = 0
    #: Metadata program status-fails (page wasted, payload rewritten).
    meta_program_faults: int = 0
    #: Metadata-region erase failures (reserved block retired).
    meta_erase_faults: int = 0
    #: Reserved metadata blocks retired (wear-out or erase failure).
    meta_blocks_retired: int = 0

    #: DFTL translation tier (repro.ftl.mapping.CachedPageMap); all zero
    #: in ``dram`` mapping mode.
    #: CMT lookups answered from the cached mapping table.
    cmt_hits: int = 0
    #: CMT lookups that faulted the translation page in from NAND.
    cmt_misses: int = 0
    #: Dirty CMT entries written back on LRU eviction.
    cmt_evictions: int = 0
    #: Translation pages programmed (evictions + checkpoint flushes).
    trans_pages_written: int = 0
    #: Translation pages read on CMT misses.
    trans_pages_read: int = 0
    #: Translation pages migrated by GC out of victim blocks.
    trans_pages_migrated: int = 0

    #: Foreground GC: invocations and total stall time charged to writes.
    fgc_invocations: int = 0
    fgc_blocks_collected: int = 0
    fgc_time_ns: int = 0

    #: Background GC: invocations (block collections) and busy time.
    bgc_blocks_collected: int = 0
    bgc_time_ns: int = 0

    #: Wear-levelling migrations folded into GC counters, tracked apart too.
    wl_blocks_collected: int = 0

    #: Victim-selection bookkeeping (Table 3).
    victim_selections: int = 0
    victims_filtered_by_sip: int = 0

    #: Fault-recovery bookkeeping (repro.faults).
    #: Read-retry attempts issued after an uncorrectable read.
    read_retries: int = 0
    #: Reads still uncorrectable after the retry budget (host sees EIO).
    uncorrectable_reads: int = 0
    #: Program status-fails recovered by rewriting elsewhere.
    program_faults: int = 0
    #: Erase failures (each failed attempt, incl. retries).
    erase_faults: int = 0
    #: Blocks retired at runtime: grown bad (program/erase fail) + worn out.
    blocks_retired: int = 0

    #: ECC escalation ladder (repro.nand.reliability); all zero when the
    #: reliability profile is off.
    #: Reads whose expected codeword errors fit the default-threshold
    #: hard decode (no extra latency).
    ecc_fast_reads: int = 0
    #: Reads that needed at least one read-retry voltage level (the
    #: per-level breakdown lives in ``PageMappedFtl.ecc_retry_histogram``).
    ecc_retry_reads: int = 0
    #: Reads rescued by the soft-decision decoder after the whole hard
    #: retry ladder failed.
    ecc_soft_decodes: int = 0
    #: Reads beyond even soft decode: uncorrectable, data lost.  Unlike
    #: ``uncorrectable_reads`` (any unrecovered read, injector faults
    #: included) this counts only ladder-modelled ECC cliff events.
    uecc_count: int = 0

    #: Refresh scrubber (repro.ftl.scrub): at-risk blocks relocated and
    #: the pages those relocations migrated (subset of
    #: ``gc_pages_migrated``, charged into WAF like any GC work).
    scrub_blocks_refreshed: int = 0
    scrub_pages_migrated: int = 0

    def waf(self) -> float:
        """Write amplification factor; 1.0 before any GC migration.

        Includes induced translation-page traffic (writebacks and GC
        migrations of translation pages); both terms are zero in ``dram``
        mapping mode, so the classic definition is unchanged there.
        """
        if self.host_pages_written == 0:
            return 1.0
        amplified = (
            self.host_pages_written
            + self.gc_pages_migrated
            + self.trans_pages_written
            + self.trans_pages_migrated
        )
        return amplified / self.host_pages_written

    def translation_waf_share(self) -> float:
        """Fraction of all page programs that were translation pages."""
        trans = self.trans_pages_written + self.trans_pages_migrated
        total = self.host_pages_written + self.gc_pages_migrated + trans
        if total == 0:
            return 0.0
        return trans / total

    def cmt_hit_rate(self) -> float:
        """CMT hit fraction; 1.0 when no lookups have happened."""
        lookups = self.cmt_hits + self.cmt_misses
        if lookups == 0:
            return 1.0
        return self.cmt_hits / lookups

    def total_pages_programmed(self) -> int:
        return (
            self.host_pages_written
            + self.gc_pages_migrated
            + self.trans_pages_written
            + self.trans_pages_migrated
        )

    def gc_blocks_collected(self) -> int:
        return self.fgc_blocks_collected + self.bgc_blocks_collected

    def sip_filtered_fraction(self) -> float:
        """Fraction of victim selections that skipped at least one
        SIP-heavy candidate -- the paper's Table 3 row."""
        if self.victim_selections == 0:
            return 0.0
        return self.victims_filtered_by_sip / self.victim_selections

    def snapshot(self) -> "FtlStats":
        """A copy, for window-delta measurements."""
        return FtlStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def delta_since(self, earlier: "FtlStats") -> "FtlStats":
        """Counter-wise difference ``self - earlier``."""
        return FtlStats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def __str__(self) -> str:
        return (
            f"FtlStats(host_w={self.host_pages_written} gc_migr={self.gc_pages_migrated} "
            f"WAF={self.waf():.3f} erases={self.blocks_erased} "
            f"fgc={self.fgc_invocations} bgc_blocks={self.bgc_blocks_collected})"
        )
