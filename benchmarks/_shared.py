"""Shared configuration and caching for the benchmark harness.

Every bench regenerates one of the paper's tables/figures at a reduced
scale (smaller device, shorter measurement window) so the full suite
finishes in minutes.  Experiment results are cached per process: the two
panels of a figure (e.g. Fig. 2a IOPS and Fig. 2b WAF) come from the
same sweep rather than running it twice.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments import (
    Fig2Result,
    Fig7Result,
    ScenarioSpec,
    run_fig2,
    run_fig7,
    run_table1,
    run_table2,
    run_table3,
)

#: Reduced-scale scenario shared by all benches.
def quick_spec() -> ScenarioSpec:
    # The runner's default device scale (OP capacity in proportion to
    # per-horizon traffic, as on the real SM843T) with shortened windows.
    return ScenarioSpec(
        blocks=1024,
        pages_per_block=64,
        warmup_s=10,
        measure_s=40,
    )


_cache: Dict[str, object] = {}


def fig2_result() -> Fig2Result:
    if "fig2" not in _cache:
        _cache["fig2"] = run_fig2(quick_spec())
    return _cache["fig2"]


def fig7_result() -> Fig7Result:
    if "fig7" not in _cache:
        _cache["fig7"] = run_fig7(quick_spec())
    return _cache["fig7"]


def table1_result():
    if "table1" not in _cache:
        _cache["table1"] = run_table1(quick_spec())
    return _cache["table1"]


def table2_result():
    if "table2" not in _cache:
        _cache["table2"] = run_table2(quick_spec())
    return _cache["table2"]


def table3_result():
    if "table3" not in _cache:
        _cache["table3"] = run_table3(quick_spec())
    return _cache["table3"]
