"""CMT-overhead benchmark: DFTL's cached mapping table vs all-DRAM.

Measures what the flash-resident mapping actually costs: the same
GC-heavy scenario runs once in ``--mapping dram`` (the reference, whole
page map in DRAM) and once in ``--mapping dftl`` (translation pages on
NAND behind an LRU cached mapping table at the default 1/64 DRAM
budget).  Both runs replay the identical workload, so every difference
is the translation tier: CMT miss reads, dirty-eviction writebacks, and
translation-block GC.

Reported per mode: wall seconds, simulator events/sec, WAF; the dftl
run adds CMT hits/misses, the hit rate, and the translation share of
all programs.  The headline ``slowdown`` is the dram/dftl events-per-sec
ratio -- a same-host wall ratio, so it transfers across machines.

Without ``--output`` the run is appended to ``BENCH_hotpaths.json``
(the dated ``bench-hotpaths/v2`` trajectory) tagged
``benchmark: "cmt_overhead"``.  ``tools/bench_gate.py`` gates cmt
payloads on ``--max-cmt-slowdown`` (default 5x) and
``--max-trans-share`` (default 0.5: translation programs must not
dominate the write stream).

Usage::

    PYTHONPATH=src python benchmarks/bench_cmt.py            # full
    PYTHONPATH=src python benchmarks/bench_cmt.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import sys
import time
from dataclasses import replace
from pathlib import Path

if __package__ in (None, ""):  # script invocation: make `repro` importable
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from bench_hotpaths import _git_commit, _load_trajectory, _machine_fingerprint
else:
    from benchmarks.bench_hotpaths import (
        _git_commit,
        _load_trajectory,
        _machine_fingerprint,
    )

from repro.experiments.crashsweep import gc_heavy_spec

#: Device scale per mode (CI smoke vs full measurement).
SCALE = {
    "full": dict(blocks=1024, pages_per_block=64, warmup_s=4, measure_s=30),
    "quick": dict(blocks=256, pages_per_block=64, warmup_s=2, measure_s=10),
}


def _drive(spec) -> tuple:
    """Run one scenario; returns (metrics, wall_s, events)."""
    from repro.experiments.runner import _run_scenario_host

    start = time.perf_counter()
    metrics, host = _run_scenario_host(spec)
    wall = time.perf_counter() - start
    return metrics, wall, host.sim.dispatched


def bench_cmt_overhead(quick: bool) -> dict:
    params = SCALE["quick" if quick else "full"]
    base = gc_heavy_spec(
        blocks=params["blocks"],
        pages_per_block=params["pages_per_block"],
        warmup_s=params["warmup_s"],
        measure_s=params["measure_s"],
    )

    out = {"scenario": dict(params)}
    eps = {}
    for mapping in ("dram", "dftl"):
        spec = replace(base, mapping=mapping)
        metrics, wall, events = _drive(spec)
        eps[mapping] = events / wall
        entry = {
            "wall_s": round(wall, 3),
            "events_per_sec": round(eps[mapping], 1),
            "waf": round(metrics.waf, 4),
            "iops": round(metrics.iops, 1),
        }
        if mapping == "dftl":
            entry.update(
                cmt_hits=metrics.cmt_hits,
                cmt_misses=metrics.cmt_misses,
                cmt_hit_rate=round(metrics.cmt_hit_rate(), 4),
                trans_pages_written=metrics.trans_pages_written,
                trans_pages_migrated=metrics.trans_pages_migrated,
                trans_share=round(metrics.translation_waf_share, 4),
            )
        out[mapping] = entry
    out["slowdown"] = round(eps["dram"] / eps["dftl"], 2)
    # The runs are time-bounded, not op-bounded, so the two WAFs come
    # from diverging replays; the delta is recorded for the trajectory,
    # not gated (the priced overhead shows up in trans_share).
    out["waf_delta"] = round(out["dftl"]["waf"] - out["dram"]["waf"], 4)
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced scale for CI smoke runs",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write a single-run payload here instead of appending to the "
        "repo trajectory (BENCH_hotpaths.json)",
    )
    args = parser.parse_args(argv)
    repo_root = Path(__file__).resolve().parents[1]

    print("[bench_cmt] dram vs dftl on the GC-heavy scenario ...", flush=True)
    results = {"cmt_overhead": bench_cmt_overhead(args.quick)}
    print(f"[bench_cmt]   {json.dumps(results['cmt_overhead'])}", flush=True)

    run = {
        "benchmark": "cmt_overhead",
        "mode": "quick" if args.quick else "full",
        "mapping": "dftl",
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "results": results,
    }
    if args.output:
        output = Path(args.output)
        output.write_text(
            json.dumps({"schema": "bench-hotpaths/v1", **run}, indent=2) + "\n"
        )
        print(f"[bench_cmt] wrote {output}")
        return 0

    output = repo_root / "BENCH_hotpaths.json"
    entries = _load_trajectory(output)
    entries.append({
        "date": datetime.date.today().isoformat(),
        "commit": _git_commit(repo_root),
        "machine": _machine_fingerprint(),
        **run,
    })
    payload = {"schema": "bench-hotpaths/v2", "entries": entries}
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[bench_cmt] appended entry {len(entries)} to {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
