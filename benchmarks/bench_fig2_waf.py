"""Fig. 2(b): normalized WAF vs the reserved capacity Cresv.

Second panel of the Fig. 2 sweep (shares the cached runs of
bench_fig2_iops).  Shape check: a larger reserve must not *reduce*
write amplification on average -- premature collection migrates pages
that would have died.
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from _shared import fig2_result  # noqa: E402


def test_fig2b_waf(benchmark):
    result = benchmark.pedantic(fig2_result, rounds=1, iterations=1)
    print()
    print(result.format().split("\n\n")[1])
    ratios = []
    for workload in result.raw:
        waf = result.normalized_waf(workload)
        ratios.append(waf[max(result.reserve_points)] / waf[min(result.reserve_points)])
    assert sum(ratios) / len(ratios) >= 1.0
