"""Table 2: prediction accuracy of JIT-GC vs ADP-GC per benchmark.

Shape check: averaged across benchmarks, the page-cache-aware JIT-GC
predictor is at least as accurate as ADP-GC's device-internal CDH.
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from _shared import table2_result  # noqa: E402


def test_table2_accuracy(benchmark):
    result = benchmark.pedantic(table2_result, rounds=1, iterations=1)
    print()
    print(result.format())
    workloads = list(result.accuracy_pct["JIT-GC"])
    jit_mean = sum(result.accuracy_pct["JIT-GC"][w] for w in workloads) / len(workloads)
    adp_mean = sum(result.accuracy_pct["ADP-GC"][w] for w in workloads) / len(workloads)
    assert jit_mean >= adp_mean - 1.0
