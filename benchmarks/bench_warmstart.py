"""Warm-start benchmark: analytic steady-state vs simulated warmup.

Measures what ``--warm-start analytic`` actually eliminates: the
*preconditioning* wall time of a GC-heavy scenario -- prefill (write the
working set, churn it down to the OP floor) plus the simulated warmup
advance -- against the analytic path's synthesize-and-settle.  Every GC
policy is preconditioned both ways on the same spec; the headline
``speedup`` is the ratio of total preconditioning walls across the
four-policy sweep, which is the factor a precondition-dominated harness
(the crash-point sweep, short-window comparisons) gains end to end.

Equivalence of the *measured* windows is validated separately: the
tolerance suite in ``tests/analytic/test_equivalence.py`` (CI smoke) and
the Fig. 2-configuration comparison documented in PERFORMANCE.md bound
the WAF/p99 divergence; this benchmark only certifies the wall-time win.

Without ``--output`` the run is appended to ``BENCH_hotpaths.json``
(the dated ``bench-hotpaths/v2`` trajectory) tagged
``benchmark: "warmstart"``.  ``tools/bench_gate.py`` gates the
``speedup`` of warmstart payloads (``--min-warmstart-speedup``,
default 5x).

Usage::

    PYTHONPATH=src python benchmarks/bench_warmstart.py            # full
    PYTHONPATH=src python benchmarks/bench_warmstart.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import sys
import time
from dataclasses import replace
from pathlib import Path

if __package__ in (None, ""):  # script invocation: make `repro` importable
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from bench_hotpaths import _git_commit, _load_trajectory, _machine_fingerprint
else:
    from benchmarks.bench_hotpaths import (
        _git_commit,
        _load_trajectory,
        _machine_fingerprint,
    )

from repro.experiments.crashsweep import gc_heavy_spec
from repro.experiments.runner import (
    POLICY_FACTORIES,
    build_preconditioned_host,
)

#: Device scale per mode: the GC-heavy spec at the default experiment
#: scale (full) and a CI-smoke reduction (quick).  ``warmup_s`` is the
#: simulated preconditioning the sim path must pay; the analytic path
#: replaces it with a fixed settle window.
SCALE = {
    "full": dict(blocks=1024, warmup_s=40, rounds=2),
    "quick": dict(blocks=512, warmup_s=20, rounds=2),
}


def _precondition_wall(spec) -> float:
    """Wall seconds until the measurement window could begin."""
    start = time.perf_counter()
    host, _collector, workload, precondition_ns = build_preconditioned_host(spec)
    host.run_for(precondition_ns)
    wall = time.perf_counter() - start
    workload.stop()
    return wall


def bench_warmstart(quick: bool) -> dict:
    params = SCALE["quick" if quick else "full"]
    base = gc_heavy_spec(blocks=params["blocks"], warmup_s=params["warmup_s"])

    per_policy = {}
    total = {"sim": 0.0, "analytic": 0.0}
    for policy in sorted(POLICY_FACTORIES):
        walls = {}
        for mode in ("sim", "analytic"):
            spec = replace(base, policy=policy, warm_start=mode)
            walls[mode] = min(
                _precondition_wall(spec) for _ in range(params["rounds"])
            )
            total[mode] += walls[mode]
        per_policy[policy] = {
            "sim_s": round(walls["sim"], 3),
            "analytic_s": round(walls["analytic"], 3),
            "speedup": round(walls["sim"] / walls["analytic"], 2),
        }

    return {
        "scenario": dict(params),
        "policies": per_policy,
        "sim_total_s": round(total["sim"], 3),
        "analytic_total_s": round(total["analytic"], 3),
        "speedup": round(total["sim"] / total["analytic"], 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced scale for CI smoke runs",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write a single-run payload here instead of appending to the "
        "repo trajectory (BENCH_hotpaths.json)",
    )
    args = parser.parse_args(argv)
    repo_root = Path(__file__).resolve().parents[1]

    print("[bench_warmstart] preconditioning sweep ...", flush=True)
    results = {"warmstart_precondition": bench_warmstart(args.quick)}
    print(
        f"[bench_warmstart]   {json.dumps(results['warmstart_precondition'])}",
        flush=True,
    )

    run = {
        "benchmark": "warmstart",
        "mode": "quick" if args.quick else "full",
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "results": results,
    }
    if args.output:
        output = Path(args.output)
        output.write_text(
            json.dumps({"schema": "bench-hotpaths/v1", **run}, indent=2) + "\n"
        )
        print(f"[bench_warmstart] wrote {output}")
        return 0

    output = repo_root / "BENCH_hotpaths.json"
    entries = _load_trajectory(output)
    entries.append({
        "date": datetime.date.today().isoformat(),
        "commit": _git_commit(repo_root),
        "machine": _machine_fingerprint(),
        **run,
    })
    payload = {"schema": "bench-hotpaths/v2", "entries": entries}
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[bench_warmstart] appended entry {len(entries)} to {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
