"""Disabled-observability overhead on the host write hot path.

Components default to the shared no-op singletons (``NULL_TRACER``,
``DISABLED_AUDIT``, ``DISABLED_OPLOG``), so each instrumentation site on
the hot path costs one ``.enabled`` attribute check.  This bench
measures that check against the real per-write cost and asserts the
aggregate guard overhead stays under the 3 % acceptance bound.  It
deliberately avoids comparing two full simulation runs -- wall-clock
deltas between runs are noise-dominated -- and instead bounds the
*only* code the instrumentation added to the disabled path.
"""

import sys
import time

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))

from repro.core.policies import JitGcPolicy  # noqa: E402
from repro.host import HostSystem  # noqa: E402
from repro.obs.attribution import DISABLED_OPLOG  # noqa: E402
from repro.obs.audit import DISABLED_AUDIT  # noqa: E402
from repro.obs.tracer import NULL_TRACER  # noqa: E402
from repro.ssd.config import SsdConfig  # noqa: E402

#: Generous upper bound on guarded instrumentation sites one host write
#: can cross: the pre-existing FTL/GC/flusher/device sites (12) plus the
#: tail-latency additions of the observability PR -- device GC-span and
#: dispatcher backpressure audit records, the per-op completion log and
#: the op-completion trace event.  The real count is lower.
GUARD_SITES_PER_WRITE = 16
OVERHEAD_BOUND = 0.03


def _fresh_host():
    host = HostSystem(SsdConfig.small(blocks=256, pages_per_block=32), JitGcPolicy())
    host.prefill(host.user_pages // 2)
    return host


def _ns_per_write(host, writes=2_000):
    ftl = host.ftl
    user = host.user_pages
    start = time.perf_counter_ns()
    for i in range(writes):
        ftl.host_write_page(i % user)
    return (time.perf_counter_ns() - start) / writes


def _ns_per_guard(iterations=50_000):
    # Unrolled 12 checks per iteration: in production the guard is one
    # inline statement inside an already-running function, so the
    # benchmark loop's own per-iteration cost (~15 ns -- 2-3 guards'
    # worth) must be amortized out, not billed to the guards.
    tracer = NULL_TRACER
    audit = DISABLED_AUDIT
    oplog = DISABLED_OPLOG
    hits = 0
    start = time.perf_counter_ns()
    for _ in range(iterations):
        if tracer.enabled:
            hits += 1
        if audit.enabled:
            hits += 1
        if oplog.enabled:
            hits += 1
        if tracer.enabled:
            hits += 1
        if audit.enabled:
            hits += 1
        if oplog.enabled:
            hits += 1
        if tracer.enabled:
            hits += 1
        if audit.enabled:
            hits += 1
        if oplog.enabled:
            hits += 1
        if tracer.enabled:
            hits += 1
        if audit.enabled:
            hits += 1
        if oplog.enabled:
            hits += 1
    elapsed = time.perf_counter_ns() - start
    assert hits == 0
    return elapsed / (12 * iterations)


def test_disabled_guard_overhead_on_write_path(benchmark):
    host = _fresh_host()
    # An unconfigured host must carry the shared no-op instrumentation
    # at every layer the tail-latency pipeline instruments.
    assert host.ftl.tracer is NULL_TRACER
    assert host.ftl.audit is DISABLED_AUDIT
    assert host.device.audit is DISABLED_AUDIT
    assert host.dispatcher.audit is DISABLED_AUDIT
    assert host.obs.oplog is DISABLED_OPLOG

    t_write = benchmark.pedantic(
        lambda: min(_ns_per_write(host) for _ in range(5)), rounds=1, iterations=1
    )
    t_guard = min(_ns_per_guard() for _ in range(5))
    overhead = GUARD_SITES_PER_WRITE * t_guard / t_write
    print()
    print(
        f"write={t_write:.0f} ns, guard={t_guard:.2f} ns, "
        f"overhead at {GUARD_SITES_PER_WRITE} sites/write = {overhead:.4%}"
    )
    assert overhead < OVERHEAD_BOUND
