"""Recovery-scan benchmark: full-device OOB scan throughput.

Measures :func:`repro.ftl.recovery.recover_ftl` over a GC-churned
device image -- the whole power-back-on path: the vectorized OOB scan,
layout re-discovery, state installation and the invariant check.  Two
numbers matter:

* ``pages_per_sec``    -- wall-clock throughput of the scan (programmed
  pages per host second).  This is the hot path of the crash-point
  sweep harness (``repro.experiments.crashsweep``), which re-runs
  recovery hundreds of times per sweep.
* ``sim_scan_ms``      -- *simulated* recovery time (one flash read per
  programmed page), the figure a device would show as power-on-ready
  latency.

Without ``--output`` the run is appended to ``BENCH_hotpaths.json``
(the dated ``bench-hotpaths/v2`` trajectory) tagged
``benchmark: "recovery_scan"``.  ``tools/bench_gate.py`` skips these
entries -- they carry no indexed-vs-scan ratios -- but the trajectory
keeps recovery throughput visible next to the hot-path history.

Usage::

    PYTHONPATH=src python benchmarks/bench_recovery.py            # full
    PYTHONPATH=src python benchmarks/bench_recovery.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # script invocation: make `repro` importable
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from bench_hotpaths import _git_commit, _load_trajectory, _machine_fingerprint
else:
    from benchmarks.bench_hotpaths import (
        _git_commit,
        _load_trajectory,
        _machine_fingerprint,
    )

import numpy as np

from repro.ftl.ftl import PageMappedFtl
from repro.ftl.recovery import recover_ftl
from repro.ftl.space import SpaceModel
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry
from repro.nand.timing import NAND_20NM_MLC

#: Device scale per mode.  Full mode scans ~2M pages; quick keeps the
#: same churned shape at CI-smoke scale.
SCALE = {
    "full": dict(blocks=16384, pages_per_block=128, rounds=3),
    "quick": dict(blocks=2048, pages_per_block=64, rounds=5),
}


def _churned_image(params: dict) -> NandArray:
    """A crash image of a device that has lived: full map, stale copies,
    torn frontiers."""
    geometry = NandGeometry(
        page_size=4096,
        pages_per_block=params["pages_per_block"],
        blocks_per_plane=params["blocks"],
    )
    space = SpaceModel.from_op_ratio(geometry, op_ratio=0.12)
    ftl = PageMappedFtl(NandArray(geometry, NAND_20NM_MLC), space)
    rng = np.random.default_rng(7)
    for lpn in range(space.user_pages):
        ftl.host_write_page(lpn)
    # Skewed overwrites leave stale copies behind and trigger GC.
    for lpn in rng.integers(0, space.user_pages // 4, space.user_pages // 2):
        ftl.host_write_page(int(lpn))
    crashed = NandArray.from_durable(
        geometry, ftl.nand.capture_durable_state(), timing=NAND_20NM_MLC
    )
    for block in (ftl.active_user_block, ftl.active_gc_block):
        if block is not None:
            crashed.tear_frontier_page(block)
    return crashed


def bench_recovery_scan(quick: bool) -> dict:
    params = SCALE["quick" if quick else "full"]
    image = _churned_image(params)
    space = SpaceModel.from_op_ratio(image.geometry, op_ratio=0.12)
    durable = image.capture_durable_state()

    walls = []
    for _ in range(params["rounds"]):
        nand = NandArray.from_durable(
            image.geometry, durable, timing=NAND_20NM_MLC
        )
        start = time.perf_counter()
        ftl, report = recover_ftl(nand, space)
        walls.append(time.perf_counter() - start)
    best = min(walls)
    return {
        "scenario": dict(params),
        "pages_scanned": report.pages_scanned,
        "mapped_lpns": report.mapped_lpns,
        "stale_pages": report.stale_pages,
        "torn_pages": report.torn_pages,
        "wall_s": round(best, 4),
        "pages_per_sec": round(report.pages_scanned / best, 1),
        "sim_scan_ms": round(report.duration_ns / 1e6, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced scale for CI smoke runs",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write a single-run payload here instead of appending to the "
        "repo trajectory (BENCH_hotpaths.json)",
    )
    args = parser.parse_args(argv)
    repo_root = Path(__file__).resolve().parents[1]

    print("[bench_recovery] recovery_scan ...", flush=True)
    results = {"recovery_scan": bench_recovery_scan(args.quick)}
    print(f"[bench_recovery]   {json.dumps(results['recovery_scan'])}", flush=True)

    run = {
        "benchmark": "recovery_scan",
        "mode": "quick" if args.quick else "full",
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "results": results,
    }
    if args.output:
        output = Path(args.output)
        output.write_text(
            json.dumps({"schema": "bench-hotpaths/v1", **run}, indent=2) + "\n"
        )
        print(f"[bench_recovery] wrote {output}")
        return 0

    output = repo_root / "BENCH_hotpaths.json"
    entries = _load_trajectory(output)
    entries.append({
        "date": datetime.date.today().isoformat(),
        "commit": _git_commit(repo_root),
        "machine": _machine_fingerprint(),
        **run,
    })
    payload = {"schema": "bench-hotpaths/v2", "entries": entries}
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[bench_recovery] appended entry {len(entries)} to {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
