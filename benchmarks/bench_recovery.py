"""Recovery benchmarks: full OOB scan vs checkpoint-bounded tail scan.

Measures :func:`repro.ftl.recovery.recover_ftl` over a GC-churned
device image -- the whole power-back-on path: metadata load, OOB scan,
layout re-discovery, state installation and the invariant check.  Two
benchmarks:

* ``recovery_scan``      -- the full-device scan (no checkpoints on the
  image).  ``pages_per_sec`` is the wall-clock throughput (the hot path
  of the crash-point sweep harness); ``sim_scan_ms`` the *simulated*
  power-on-ready latency (one flash read per programmed page).
* ``recovery_tail_scan`` -- the same churned device, but running with
  periodic mapping checkpoints.  Recovery loads the newest complete
  checkpoint and rescans only the log tail past its horizon; the
  benchmark recovers the identical image once with its durable metadata
  (``checkpointed_ms``) and once with the metadata region stripped
  (``full_scan_ms``, the pre-checkpoint protocol), and reports
  ``speedup_sim`` -- the power-on-ready improvement the checkpoint
  buys.  Both paths must reconstruct the same L2P table.

Without ``--output`` the run is appended to ``BENCH_hotpaths.json``
(the dated ``bench-hotpaths/v2`` trajectory) tagged
``benchmark: "recovery"``.  ``tools/bench_gate.py`` gates the
``speedup_sim`` ratio of recovery payloads (``--min-recovery-speedup``)
and skips recovery entries when gating hot-path runs.

Usage::

    PYTHONPATH=src python benchmarks/bench_recovery.py            # full
    PYTHONPATH=src python benchmarks/bench_recovery.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import dataclasses
import datetime
import json
import os
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # script invocation: make `repro` importable
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from bench_hotpaths import _git_commit, _load_trajectory, _machine_fingerprint
else:
    from benchmarks.bench_hotpaths import (
        _git_commit,
        _load_trajectory,
        _machine_fingerprint,
    )

import numpy as np

from repro.ftl.ftl import PageMappedFtl
from repro.ftl.recovery import recover_ftl
from repro.ftl.space import SpaceModel
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry
from repro.nand.timing import NAND_20NM_MLC

#: Device scale per mode.  Full mode scans ~2M pages; quick keeps the
#: same churned shape at CI-smoke scale.
SCALE = {
    "full": dict(blocks=16384, pages_per_block=128, rounds=3),
    "quick": dict(blocks=2048, pages_per_block=64, rounds=5),
}


def _churned_image(params: dict, checkpoint_interval=None) -> NandArray:
    """A crash image of a device that has lived: full map, stale copies,
    torn frontiers (and, when ``checkpoint_interval`` is set, a durable
    metadata log of periodic checkpoints)."""
    geometry = NandGeometry(
        page_size=4096,
        pages_per_block=params["pages_per_block"],
        blocks_per_plane=params["blocks"],
    )
    space = SpaceModel.from_op_ratio(geometry, op_ratio=0.12)
    ftl = PageMappedFtl(
        NandArray(geometry, NAND_20NM_MLC),
        space,
        checkpoint_interval_pages=checkpoint_interval,
    )
    rng = np.random.default_rng(7)
    for lpn in range(space.user_pages):
        ftl.host_write_page(lpn)
    # Skewed overwrites leave stale copies behind and trigger GC.
    for lpn in rng.integers(0, space.user_pages // 4, space.user_pages // 2):
        ftl.host_write_page(int(lpn))
    if checkpoint_interval:
        # Land the crash mid-interval, not on a checkpoint boundary: the
        # tail scan must cover a representative half-interval of churn.
        for lpn in rng.integers(0, space.user_pages // 4, checkpoint_interval // 2):
            ftl.host_write_page(int(lpn))
    crashed = NandArray.from_durable(
        geometry, ftl.nand.capture_durable_state(), timing=NAND_20NM_MLC
    )
    for block in (ftl.active_user_block, ftl.active_gc_block):
        if block is not None:
            crashed.tear_frontier_page(block)
    return crashed


def bench_recovery_scan(quick: bool) -> dict:
    params = SCALE["quick" if quick else "full"]
    image = _churned_image(params)
    space = SpaceModel.from_op_ratio(image.geometry, op_ratio=0.12)
    durable = image.capture_durable_state()

    walls = []
    for _ in range(params["rounds"]):
        nand = NandArray.from_durable(
            image.geometry, durable, timing=NAND_20NM_MLC
        )
        start = time.perf_counter()
        ftl, report = recover_ftl(nand, space)
        walls.append(time.perf_counter() - start)
    best = min(walls)
    return {
        "scenario": dict(params),
        "pages_scanned": report.pages_scanned,
        "mapped_lpns": report.mapped_lpns,
        "stale_pages": report.stale_pages,
        "torn_pages": report.torn_pages,
        "wall_s": round(best, 4),
        "pages_per_sec": round(report.pages_scanned / best, 1),
        "sim_scan_ms": round(report.duration_ns / 1e6, 3),
    }


def bench_recovery_tail_scan(quick: bool) -> dict:
    """Checkpointed power-on vs the full scan, on the same crash image."""
    params = SCALE["quick" if quick else "full"]
    geometry = NandGeometry(
        page_size=4096,
        pages_per_block=params["pages_per_block"],
        blocks_per_plane=params["blocks"],
    )
    space = SpaceModel.from_op_ratio(geometry, op_ratio=0.12)
    # One checkpoint per 1/32nd of the device's user pages; the churn
    # then continues half an interval past the last checkpoint, so the
    # tail scan covers a representative mid-interval crash.
    interval = max(1, space.user_pages // 32)
    image = _churned_image(params, checkpoint_interval=interval)
    durable = image.capture_durable_state()
    stripped = dataclasses.replace(durable, meta=())

    ckpt_walls, full_walls = [], []
    for _ in range(params["rounds"]):
        nand = NandArray.from_durable(geometry, durable, timing=NAND_20NM_MLC)
        start = time.perf_counter()
        ftl, ckpt_report = recover_ftl(nand, space)
        ckpt_walls.append(time.perf_counter() - start)

        nand = NandArray.from_durable(geometry, stripped, timing=NAND_20NM_MLC)
        start = time.perf_counter()
        ftl_full, full_report = recover_ftl(nand, space)
        full_walls.append(time.perf_counter() - start)

    if ckpt_report.full_scan:
        raise RuntimeError("checkpointed image fell back to a full scan")
    if not np.array_equal(
        ftl.page_map.l2p_snapshot(), ftl_full.page_map.l2p_snapshot()
    ):
        raise RuntimeError("tail-scan and full-scan recovery disagree on L2P")

    checkpointed_ms = ckpt_report.duration_ns / 1e6
    full_scan_ms = full_report.duration_ns / 1e6
    return {
        "scenario": dict(params, checkpoint_interval=interval),
        "checkpoint_generation": ckpt_report.checkpoint_generation,
        "meta_pages": ckpt_report.meta_pages_read,
        "tail_pages": ckpt_report.pages_scanned,
        "full_scan_pages": full_report.pages_scanned,
        "checkpointed_ms": round(checkpointed_ms, 3),
        "full_scan_ms": round(full_scan_ms, 3),
        "speedup_sim": round(full_scan_ms / checkpointed_ms, 2),
        "wall_s_checkpointed": round(min(ckpt_walls), 4),
        "wall_s_full": round(min(full_walls), 4),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced scale for CI smoke runs",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write a single-run payload here instead of appending to the "
        "repo trajectory (BENCH_hotpaths.json)",
    )
    args = parser.parse_args(argv)
    repo_root = Path(__file__).resolve().parents[1]

    results = {}
    print("[bench_recovery] recovery_scan ...", flush=True)
    results["recovery_scan"] = bench_recovery_scan(args.quick)
    print(f"[bench_recovery]   {json.dumps(results['recovery_scan'])}", flush=True)
    print("[bench_recovery] recovery_tail_scan ...", flush=True)
    results["recovery_tail_scan"] = bench_recovery_tail_scan(args.quick)
    print(
        f"[bench_recovery]   {json.dumps(results['recovery_tail_scan'])}", flush=True
    )

    run = {
        "benchmark": "recovery",
        "mode": "quick" if args.quick else "full",
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "results": results,
    }
    if args.output:
        output = Path(args.output)
        output.write_text(
            json.dumps({"schema": "bench-hotpaths/v1", **run}, indent=2) + "\n"
        )
        print(f"[bench_recovery] wrote {output}")
        return 0

    output = repo_root / "BENCH_hotpaths.json"
    entries = _load_trajectory(output)
    entries.append({
        "date": datetime.date.today().isoformat(),
        "commit": _git_commit(repo_root),
        "machine": _machine_fingerprint(),
        **run,
    })
    payload = {"schema": "bench-hotpaths/v2", "entries": entries}
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[bench_recovery] appended entry {len(entries)} to {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
