"""Reliability-overhead benchmark: the armed ladder vs the off build.

Measures what the always-on data-integrity subsystem costs when nothing
is actually at risk: the same GC-heavy scenario runs once with
``--reliability off`` (the historical device) and once with
``--reliability mlc-20nm`` (the realistic profile, whose retention and
disturb thresholds sit months away from a seconds-long simulation).
Both runs replay the identical workload and the ladder never escalates,
so every difference is pure bookkeeping: the retention-clock stamps,
the disturb counters, and the per-read ladder-cache lookup.

Reported per mode: wall seconds, simulator events/sec, WAF, IOPS; the
armed run adds the fast-read count and the (expected-zero) scrub and
UECC counters.  The headline ``slowdown`` is the off/armed
events-per-sec ratio -- a same-host wall ratio, so it transfers across
machines.

Without ``--output`` the run is appended to ``BENCH_hotpaths.json``
(the dated ``bench-hotpaths/v2`` trajectory) tagged
``benchmark: "reliability_overhead"``.  ``tools/bench_gate.py`` gates
these payloads on ``--max-reliability-overhead`` (default 1.03: the
quiescent subsystem must cost under 3 % of events/sec) and on the
armed run staying genuinely quiescent (zero scrubs, zero UECCs).

Usage::

    PYTHONPATH=src python benchmarks/bench_reliability.py            # full
    PYTHONPATH=src python benchmarks/bench_reliability.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import sys
import time
from dataclasses import replace
from pathlib import Path

if __package__ in (None, ""):  # script invocation: make `repro` importable
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from bench_hotpaths import _git_commit, _load_trajectory, _machine_fingerprint
else:
    from benchmarks.bench_hotpaths import (
        _git_commit,
        _load_trajectory,
        _machine_fingerprint,
    )

from repro.experiments.crashsweep import gc_heavy_spec

#: Device scale per mode (CI smoke vs full measurement).
SCALE = {
    "full": dict(blocks=1024, pages_per_block=64, warmup_s=4, measure_s=30),
    "quick": dict(blocks=256, pages_per_block=64, warmup_s=2, measure_s=10),
}

#: Wall-time samples per mode; the fastest is kept.  The gate's ceiling
#: is 3 %, well inside single-run scheduler noise on a ~1 s run, and the
#: simulator is deterministic, so repeats only de-noise the denominator.
REPEATS = 3


def _drive(spec) -> tuple:
    """Run one scenario REPEATS times; returns (metrics, best_wall_s, events)."""
    from repro.experiments.runner import _run_scenario_host

    best_wall = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        metrics, host = _run_scenario_host(spec)
        best_wall = min(best_wall, time.perf_counter() - start)
    return metrics, best_wall, host.sim.dispatched


def bench_reliability_overhead(quick: bool) -> dict:
    params = SCALE["quick" if quick else "full"]
    base = gc_heavy_spec(
        blocks=params["blocks"],
        pages_per_block=params["pages_per_block"],
        warmup_s=params["warmup_s"],
        measure_s=params["measure_s"],
    )

    out = {"scenario": dict(params)}
    eps = {}
    for mode, reliability in (("off", None), ("armed", "mlc-20nm")):
        spec = replace(base, reliability=reliability)
        metrics, wall, events = _drive(spec)
        eps[mode] = events / wall
        entry = {
            "wall_s": round(wall, 3),
            "events_per_sec": round(eps[mode], 1),
            "waf": round(metrics.waf, 4),
            "iops": round(metrics.iops, 1),
        }
        if mode == "armed":
            entry.update(
                ecc_fast_reads=metrics.ecc_fast_reads,
                ecc_retry_reads=metrics.ecc_retry_reads,
                uecc_count=metrics.uecc_count,
                scrub_blocks_refreshed=metrics.scrub_blocks_refreshed,
            )
        out[mode] = entry
    out["slowdown"] = round(eps["off"] / eps["armed"], 4)
    # Time-bounded runs: the WAF delta is trajectory colour, not a gate
    # (a quiescent ladder must not change WAF at all -- the gate checks
    # the scrub/UECC counters instead, which prove quiescence directly).
    out["waf_delta"] = round(out["armed"]["waf"] - out["off"]["waf"], 4)
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced scale for CI smoke runs",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write a single-run payload here instead of appending to the "
        "repo trajectory (BENCH_hotpaths.json)",
    )
    args = parser.parse_args(argv)
    repo_root = Path(__file__).resolve().parents[1]

    print(
        "[bench_reliability] off vs mlc-20nm on the GC-heavy scenario ...",
        flush=True,
    )
    results = {"reliability_overhead": bench_reliability_overhead(args.quick)}
    print(
        f"[bench_reliability]   {json.dumps(results['reliability_overhead'])}",
        flush=True,
    )

    run = {
        "benchmark": "reliability_overhead",
        "mode": "quick" if args.quick else "full",
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "results": results,
    }
    if args.output:
        output = Path(args.output)
        output.write_text(
            json.dumps({"schema": "bench-hotpaths/v1", **run}, indent=2) + "\n"
        )
        print(f"[bench_reliability] wrote {output}")
        return 0

    output = repo_root / "BENCH_hotpaths.json"
    entries = _load_trajectory(output)
    entries.append({
        "date": datetime.date.today().isoformat(),
        "commit": _git_commit(repo_root),
        "machine": _machine_fingerprint(),
        **run,
    })
    payload = {"schema": "bench-hotpaths/v2", "entries": entries}
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[bench_reliability] appended entry {len(entries)} to {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
