"""Fig. 7(a): normalized IOPS of L-BGC / A-BGC / ADP-GC / JIT-GC.

The paper's headline performance result.  Shape checks: averaged over
the six benchmarks, JIT-GC beats L-BGC and tracks A-BGC.
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from _shared import fig7_result  # noqa: E402


def test_fig7a_iops(benchmark):
    result = benchmark.pedantic(fig7_result, rounds=1, iterations=1)
    print()
    print(result.format().split("\n\n")[0])
    assert result.mean_iops_gain_over("JIT-GC", "L-BGC") >= 1.0
    # JIT-GC holds most of A-BGC's performance on average.
    assert result.mean_iops_gain_over("JIT-GC", "A-BGC") >= 0.85
