"""Ablation benches for the design choices DESIGN.md calls out:
CDH percentile, SIP filtering, predictor strictness, manager laziness.
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from _shared import quick_spec  # noqa: E402

from repro.experiments import (
    run_manager_laziness,
    run_percentile_sweep,
    run_predictor_strictness,
    run_sip_ablation,
)


def test_ablation_cdh_percentile(benchmark):
    spec = quick_spec()
    spec.workload = "TPC-C"
    result = benchmark.pedantic(
        lambda: run_percentile_sweep(spec), rounds=1, iterations=1
    )
    print()
    print(result.format())
    assert len(result.raw) == 4


def test_ablation_sip_filter(benchmark):
    spec = quick_spec()
    spec.workload = "Postmark"
    result = benchmark.pedantic(lambda: run_sip_ablation(spec), rounds=1, iterations=1)
    print()
    print(result.format())
    with_sip = result.raw["JIT-GC (SIP)"]
    without = result.raw["JIT-GC (no SIP)"]
    # SIP filtering must not increase write amplification.
    assert with_sip.waf <= without.waf * 1.02


def test_ablation_predictor_strictness(benchmark):
    spec = quick_spec()
    spec.workload = "YCSB"
    result = benchmark.pedantic(
        lambda: run_predictor_strictness(spec), rounds=1, iterations=1
    )
    print()
    print(result.format())
    assert len(result.raw) == 2


def test_ablation_manager_laziness(benchmark):
    spec = quick_spec()
    spec.workload = "TPC-C"
    result = benchmark.pedantic(
        lambda: run_manager_laziness(spec), rounds=1, iterations=1
    )
    print()
    print(result.format())
    # Pure deferral must not beat full-horizon coverage on FGC avoidance.
    assert (
        result.raw["full-horizon guard"].fgc_invocations
        <= result.raw["pure deferral"].fgc_invocations + 5
    )
