"""Hot-path benchmark: incremental indexes vs reference scans.

Measures the costs the indexes attack (PERFORMANCE.md) and the parallel
executor's wall-clock scaling.  Without ``--output`` the run is
*appended* to ``BENCH_hotpaths.json`` -- the repo's dated perf
trajectory (``bench-hotpaths/v2``: one entry per run with date, commit
and machine fingerprint) that ``tools/bench_gate.py`` gates against.
With ``--output PATH`` a single-run ``bench-hotpaths/v1`` payload is
written instead (what CI feeds the gate as the run under test).

* ``events_per_sec``  -- end-to-end simulator throughput (dispatched
  events per wall second of the measurement window) on a GC-heavy
  scenario, indexed vs scan (``repro.perf.scan_reference``).  Identical
  simulations -- the equivalence suite asserts bit-identical results --
  so the ratio is pure hot-path cost.
* ``victim_selection_us`` -- mean latency of one SIP-filtered victim
  selection over a populated FTL.
* ``flusher_tick_us``  -- mean latency of one flusher-tick interrogation
  (expired-dirty query + Dbuf prediction) over a large dirty set.
* ``sweep_jobs``       -- wall clock of the same 4-scenario sweep at
  ``--jobs 1`` vs ``--jobs 2`` (meaningful only on multi-core hosts;
  ``cpu_count`` is recorded so the gate can tell).

The GC-heavy scenario drives a large-population device (32k blocks in
full mode) with a buffered write-heavy uniform workload until the
over-provisioning pool churns: the JIT-GC controller polls victim state
on every device-idle transition and the measurement window performs
~1.5k victim selections.  Scan mode pays O(blocks) per ``has_victim``
poll, O(blocks log blocks) + O(rank x pages/block) per selection, and
O(dirty) per flusher tick; indexed mode answers the same questions from
the incremental indexes.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py            # full
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # script invocation: make `repro` importable
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import perf
from repro.core.buffered_predictor import BufferedWritePredictor
from repro.experiments.runner import (
    POLICY_FACTORIES,
    ScenarioSpec,
    _advance_tolerating_death,
    run_sweep,
)
from repro.ftl.ftl import PageMappedFtl
from repro.ftl.space import SpaceModel
from repro.ftl.victim import SipFilteredSelector
from repro.host import HostSystem
from repro.metrics.collector import MetricsCollector
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry
from repro.nand.timing import NandTiming
from repro.oskernel.cache import PageCache
from repro.sim.simtime import SECOND
from repro.ssd.config import SsdConfig
from repro.workloads.base import Region
from repro.workloads.synthetic import SyntheticWorkload

#: The GC-heavy seed scenario (see module docstring).  The quick variant
#: keeps the same shape at CI-smoke scale.
GC_HEAVY = {
    "full": dict(blocks=32768, pages_per_block=16, tau_s=20, warmup_s=25, measure_s=15),
    "quick": dict(blocks=12288, pages_per_block=16, tau_s=20, warmup_s=12, measure_s=10),
}


def _drive_gc_heavy(params: dict) -> dict:
    """Run the GC-heavy scenario; returns stats of the measured window.

    Prefill and warmup are excluded from the timed window -- they
    dispatch (almost) no events and would dilute the events/sec ratio
    identically on both paths.
    """
    config = SsdConfig.small(
        blocks=params["blocks"],
        pages_per_block=params["pages_per_block"],
        op_ratio=0.07,
    )
    policy = POLICY_FACTORIES["JIT-GC"]()
    user_bytes = params["blocks"] * params["pages_per_block"] * 4096
    host = HostSystem(
        config,
        policy,
        seed=42,
        cache_bytes=int(user_bytes * 0.93),
        flusher_period_ns=SECOND,
        tau_expire_ns=params["tau_s"] * SECOND,
    )
    host.prefill(host.user_pages)
    metrics = MetricsCollector(host, workload_name="Synthetic")
    workload = SyntheticWorkload(
        host,
        metrics,
        Region(0, host.user_pages),
        direct_fraction=0.0,
        write_fraction=0.95,
        min_pages=8,
        max_pages=8,
        zipf_theta=0.0,
        actors=4,
    )
    workload.start()
    _advance_tolerating_death(host, params["warmup_s"] * SECOND)
    dispatched_before = host.sim.dispatched
    selections_before = host.ftl.victim_selector.total_selections
    start = time.perf_counter()
    _advance_tolerating_death(host, params["measure_s"] * SECOND)
    elapsed = time.perf_counter() - start
    events = host.sim.dispatched - dispatched_before
    return {
        "events": events,
        "wall_s": round(elapsed, 3),
        "events_per_sec": round(events / elapsed, 1),
        "gc_selections": host.ftl.victim_selector.total_selections
        - selections_before,
        "dirty_pages": host.cache.dirty_pages,
    }


def bench_events_per_sec(quick: bool) -> dict:
    params = GC_HEAVY["quick" if quick else "full"]
    out = {"scenario": dict(params)}
    out["indexed"] = _drive_gc_heavy(params)
    with perf.scan_reference():
        out["scan"] = _drive_gc_heavy(params)
    out["speedup"] = round(
        out["indexed"]["events_per_sec"] / out["scan"]["events_per_sec"], 2
    )
    return out


def _populated_ftl() -> PageMappedFtl:
    geometry = NandGeometry(page_size=4096, pages_per_block=32, blocks_per_plane=512)
    timing = NandTiming(read_ns=10, program_ns=100, erase_ns=1000, transfer_ns_per_page=1)
    ftl = PageMappedFtl(
        NandArray(geometry, timing),
        SpaceModel.from_op_ratio(geometry, 0.12),
        victim_selector=SipFilteredSelector(),
    )
    user = ftl.space.user_pages
    # Two overwrite rounds close most blocks and spread valid counts.
    for lpn in range(user // 2):
        ftl.host_write_page(lpn)
    for lpn in range(0, user // 2, 3):
        ftl.host_write_page(lpn)
    ftl.set_sip_list(range(0, user // 2, 7))
    return ftl


def bench_victim_selection(quick: bool) -> dict:
    rounds = 200 if quick else 1000
    out = {}
    for label in ("indexed", "scan"):
        if label == "indexed":
            ftl = _populated_ftl()
        else:
            with perf.scan_reference():
                ftl = _populated_ftl()
        fast = ftl.victim_index is not None
        start = time.perf_counter()
        for _ in range(rounds):
            if fast:
                ftl.victim_selector.select(
                    None,
                    ftl.page_map,
                    sip_lpns=ftl.sip_lpns,
                    excluded_blocks=ftl.retired_blocks,
                    valid_index=ftl.victim_index,
                    sip_overlap=ftl.sip_index,
                )
            else:
                ftl.victim_selector.select(
                    ftl.gc_candidates(),
                    ftl.page_map,
                    block_ages=ftl._ages(),
                    sip_lpns=ftl.sip_lpns,
                    excluded_blocks=ftl.retired_blocks,
                )
        elapsed = time.perf_counter() - start
        out[label] = {"mean_us": round(elapsed / rounds * 1e6, 2)}
    out["speedup"] = round(out["scan"]["mean_us"] / out["indexed"]["mean_us"], 2)
    return out


def bench_flusher_tick(quick: bool) -> dict:
    pages = 20_000 if quick else 100_000
    rounds = 20 if quick else 50
    period, tau = 5, 30
    out = {}
    for label in ("indexed", "scan"):
        indexed = label == "indexed"
        cache = PageCache(4096, 4 * pages * 4096, indexed=indexed)
        predictor = BufferedWritePredictor(cache, period, tau, incremental=indexed)
        for lpn in range(pages):
            cache.write_page(lpn, now=lpn % (tau + period))
        start = time.perf_counter()
        for i in range(rounds):
            now = tau + i * period
            cache.expired_dirty(now, tau)
            predictor.predict(now)
        elapsed = time.perf_counter() - start
        out[label] = {"pages": pages, "mean_us": round(elapsed / rounds * 1e6, 2)}
    out["speedup"] = round(out["scan"]["mean_us"] / out["indexed"]["mean_us"], 2)
    return out


def bench_sweep_jobs(quick: bool) -> dict:
    base = ScenarioSpec(
        blocks=128 if quick else 256,
        pages_per_block=32,
        warmup_s=5,
        measure_s=10 if quick else 30,
        seed=3,
    )
    specs = [base.with_policy(name) for name in ("L-BGC", "A-BGC", "ADP-GC", "JIT-GC")]
    out = {"cpu_count": os.cpu_count()}
    for jobs in (1, 2):
        start = time.perf_counter()
        outcome = run_sweep(list(specs), jobs=jobs)
        elapsed = time.perf_counter() - start
        if not outcome.ok():
            raise RuntimeError(f"sweep failed at jobs={jobs}: {outcome.failures}")
        out[f"jobs{jobs}"] = {"wall_s": round(elapsed, 3)}
    out["speedup"] = round(out["jobs1"]["wall_s"] / out["jobs2"]["wall_s"], 2)
    return out


def _machine_fingerprint() -> dict:
    """Stable-ish identity of the host a trajectory entry was measured on.

    Absolute numbers are only comparable within one fingerprint; the gate
    therefore compares *ratios* (indexed/scan on the same host cancels
    the machine out) but records the fingerprint so a human reading the
    trajectory can tell which entries came from the same box.
    """
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python_implementation": platform.python_implementation(),
    }


def _git_commit(repo_root: Path) -> str:
    """Short commit hash of the measured tree (``unknown`` outside git)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_root, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return proc.stdout.strip() or "unknown"


def _load_trajectory(path: Path) -> list:
    """Existing trajectory entries; migrates a flat v1 payload in place."""
    if not path.exists():
        return []
    payload = json.loads(path.read_text())
    schema = payload.get("schema")
    if schema == "bench-hotpaths/v2":
        return list(payload["entries"])
    if schema == "bench-hotpaths/v1":
        # Pre-trajectory baseline: keep it as the first entry so the
        # history starts where the repo's measurements started.
        migrated = {"date": "unknown", "commit": "unknown",
                    "machine": {}}
        migrated.update(payload)
        migrated.pop("schema", None)
        return [migrated]
    raise SystemExit(f"unsupported trajectory schema {schema!r} in {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced scale for CI smoke runs (minutes -> seconds)",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write a single-run payload here instead of appending to the "
        "repo trajectory (BENCH_hotpaths.json)",
    )
    args = parser.parse_args(argv)

    repo_root = Path(__file__).resolve().parents[1]

    results = {}
    for name, bench in (
        ("events_per_sec", bench_events_per_sec),
        ("victim_selection_us", bench_victim_selection),
        ("flusher_tick_us", bench_flusher_tick),
        ("sweep_jobs", bench_sweep_jobs),
    ):
        print(f"[bench_hotpaths] {name} ...", flush=True)
        results[name] = bench(args.quick)
        print(f"[bench_hotpaths]   {json.dumps(results[name])}", flush=True)

    run = {
        "mode": "quick" if args.quick else "full",
        # Mapping mode the measurements ran under: the gate only
        # compares like-for-like entries (dram vs dftl hot paths differ).
        "mapping": "dram",
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "results": results,
    }
    if args.output:
        # Single measurement for the gate's --current input (CI).
        payload = {"schema": "bench-hotpaths/v1", **run}
        output = Path(args.output)
        output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"[bench_hotpaths] wrote {output}")
        return 0

    # Default: append a dated entry to the repo's perf trajectory.
    output = repo_root / "BENCH_hotpaths.json"
    entries = _load_trajectory(output)
    entries.append({
        "date": datetime.date.today().isoformat(),
        "commit": _git_commit(repo_root),
        "machine": _machine_fingerprint(),
        **run,
    })
    payload = {"schema": "bench-hotpaths/v2", "entries": entries}
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[bench_hotpaths] appended entry {len(entries)} to {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
