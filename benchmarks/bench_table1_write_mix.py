"""Table 1: buffered/direct write mix of the six benchmark models.

Shape check: the measured mix follows the paper's ordering -- YCSB
most buffered, TPC-C essentially all-direct -- within a coarse
tolerance.
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from _shared import table1_result  # noqa: E402

from repro.experiments.table1 import PAPER_BUFFERED_PCT


def test_table1_write_mix(benchmark):
    result = benchmark.pedantic(table1_result, rounds=1, iterations=1)
    print()
    print(result.format())
    for workload, measured in result.buffered_pct.items():
        assert abs(measured - PAPER_BUFFERED_PCT[workload]) < 15.0, (
            f"{workload}: measured {measured:.1f}% buffered vs paper "
            f"{PAPER_BUFFERED_PCT[workload]:.1f}%"
        )
