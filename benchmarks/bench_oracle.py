"""Oracle bound: how close does JIT-GC get to the ideal (Sec 2) policy?

The paper motivates JIT-GC as a practical approximation of the ideal
policy that knows future writes.  This bench runs the two-pass
capture/replay comparison and reports the remaining gap.
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from _shared import quick_spec  # noqa: E402

from repro.experiments import run_oracle_comparison


def test_oracle_bound(benchmark):
    spec = quick_spec()
    spec.workload = "TPC-C"
    result = benchmark.pedantic(
        lambda: run_oracle_comparison(spec), rounds=1, iterations=1
    )
    print()
    print(result.format())
    print(f"IOPS gap (JIT/ORACLE): {result.iops_gap():.3f}")
    print(f"WAF  gap (JIT/ORACLE): {result.waf_gap():.3f}")
    # The predictor-based policy cannot beat the oracle by much on IOPS
    # (small wins are possible through second-order timing effects).
    assert result.iops_gap() <= 1.1
