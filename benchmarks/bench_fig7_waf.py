"""Fig. 7(b): normalized WAF of the four policies.

The paper's headline lifetime result.  Shape check: JIT-GC reduces WAF
relative to A-BGC on average (paper: -44 % on their testbed).
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from _shared import fig7_result  # noqa: E402


def test_fig7b_waf(benchmark):
    result = benchmark.pedantic(fig7_result, rounds=1, iterations=1)
    print()
    print(result.format().split("\n\n")[1])
    assert result.mean_waf_reduction_over("JIT-GC", "A-BGC") >= 0.0
