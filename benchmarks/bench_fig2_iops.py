"""Fig. 2(a): normalized IOPS vs the reserved capacity Cresv.

Regenerates the paper's reserved-capacity sweep (0.5 ... 1.5 x C_OP,
six benchmarks) and checks the shape: IOPS at the largest reserve beats
IOPS at the smallest for the GC-sensitive benchmarks.
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from _shared import fig2_result  # noqa: E402


def test_fig2a_iops(benchmark):
    result = benchmark.pedantic(fig2_result, rounds=1, iterations=1)
    print()
    print(result.format().split("\n\n")[0])
    # Shape: the aggressive end must not lose to the lazy end on average.
    gains = []
    for workload in result.raw:
        iops = result.normalized_iops(workload)
        gains.append(iops[max(result.reserve_points)] / iops[min(result.reserve_points)])
    assert sum(gains) / len(gains) >= 1.0
