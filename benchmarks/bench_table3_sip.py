"""Table 3: SIP-filtered GC victim selections per benchmark.

Shape check: the filter is active on buffered-write-heavy benchmarks
and near-inactive on TPC-C (no page-cache dirty data to speak of).
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from _shared import table3_result  # noqa: E402


def test_table3_sip_filtering(benchmark):
    result = benchmark.pedantic(table3_result, rounds=1, iterations=1)
    print()
    print(result.format())
    buffered_heavy = [
        result.filtered_pct[w] for w in ("YCSB", "Postmark", "Filebench")
    ]
    assert max(buffered_heavy) >= result.filtered_pct["TPC-C"]
