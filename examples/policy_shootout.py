#!/usr/bin/env python3
"""Policy shoot-out: the paper's Fig. 7 comparison on one workload.

Runs the same benchmark (choose with argv[1], default Postmark) under
all four BGC policies -- L-BGC, A-BGC, ADP-GC and JIT-GC -- on an
identical device with an identical workload replay, and prints the
normalized IOPS/WAF exactly like the paper's bar charts.

Run:  python examples/policy_shootout.py [YCSB|Postmark|Filebench|Bonnie++|Tiobench|TPC-C]
"""

import sys

from repro.experiments import (
    POLICY_FACTORIES,
    ScenarioSpec,
    format_table,
    normalize_to,
    run_policy_comparison,
)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "Postmark"
    spec = ScenarioSpec(
        workload=workload,
        blocks=512,
        pages_per_block=32,
        warmup_s=15,
        measure_s=60,
    )
    print(f"running {workload} under {len(POLICY_FACTORIES)} policies "
          f"({spec.measure_s}s measured)...")
    results = run_policy_comparison(spec)

    iops = normalize_to({p: m.iops for p, m in results.items()}, "A-BGC")
    waf = normalize_to({p: m.waf for p, m in results.items()}, "A-BGC")
    rows = [
        [
            policy,
            metrics.iops,
            iops[policy],
            metrics.waf,
            waf[policy],
            metrics.fgc_invocations,
            metrics.bgc_blocks,
        ]
        for policy, metrics in results.items()
    ]
    print()
    print(
        format_table(
            ["Policy", "IOPS", "IOPS/A-BGC", "WAF", "WAF/A-BGC", "FGC", "BGC blocks"],
            rows,
            title=f"Fig. 7-style comparison on {workload}",
        )
    )
    print()
    print("Paper expectation: IOPS  L-BGC < ADP-GC <= JIT-GC ~ A-BGC;")
    print("                   WAF   JIT-GC <= L-BGC < ADP-GC < A-BGC.")


if __name__ == "__main__":
    main()
