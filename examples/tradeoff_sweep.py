#!/usr/bin/env python3
"""Reserved-capacity trade-off sweep: the paper's Fig. 2 on one workload.

Sweeps a fixed-reserve BGC policy's ``Cresv`` from 0.5 x C_OP to
1.5 x C_OP and prints the IOPS/WAF trade-off curve that motivates
JIT-GC: a bigger reserve buys performance but costs lifetime.

Run:  python examples/tradeoff_sweep.py [workload]
"""

import sys

from repro.core.policies import FixedReservePolicy
from repro.experiments import ScenarioSpec, format_table, run_scenario


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "TPC-C"
    points = (0.5, 0.75, 1.0, 1.25, 1.5)
    rows = []
    for point in points:
        spec = ScenarioSpec(
            workload=workload,
            blocks=512,
            pages_per_block=32,
            warmup_s=15,
            measure_s=45,
        ).with_policy(f"{point:g}OP", lambda p=point: FixedReservePolicy(p))
        metrics = run_scenario(spec)
        rows.append(
            [
                f"{point:g} x OP",
                metrics.iops,
                metrics.waf,
                metrics.fgc_invocations,
                round(metrics.fgc_time_ns / 1e9, 2),
                metrics.erases,
            ]
        )
        print(f"  Cresv = {point:g} x OP done")
    print()
    print(
        format_table(
            ["Cresv", "IOPS", "WAF", "FGC stalls", "FGC time (s)", "erases"],
            rows,
            title=f"Fig. 2-style reserved-capacity sweep on {workload}",
        )
    )
    print()
    print("Expect IOPS to rise and WAF/erases to rise with the reserve --")
    print("performance and lifetime pull in opposite directions.")


if __name__ == "__main__":
    main()
