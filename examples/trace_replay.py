#!/usr/bin/env python3
"""Trace record & replay: capture one run's I/O, evaluate it anywhere.

Records the application-level I/O of a synthetic workload into a CSV
trace, then replays that exact trace against two different GC policies
and compares them -- the workflow a storage engineer uses to evaluate
firmware changes against production traces.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import JitGcPolicy, SsdConfig, lazy_bgc_policy
from repro.host import HostSystem
from repro.metrics.collector import MetricsCollector
from repro.sim.simtime import SECOND
from repro.workloads import (
    Region,
    SyntheticWorkload,
    TraceRecorder,
    TraceWorkload,
    load_trace,
    save_trace,
)


def record_trace(path: Path) -> int:
    """Run a synthetic workload, capturing its dispatcher traffic."""
    host = HostSystem(SsdConfig.small(blocks=512, pages_per_block=32), lazy_bgc_policy())
    working_set = host.user_pages // 2
    host.prefill(working_set)
    recorder = TraceRecorder(host.dispatcher, host.sim)
    metrics = MetricsCollector(host, "synthetic")
    workload = SyntheticWorkload(
        host, metrics, Region(0, working_set),
        direct_fraction=0.3, write_fraction=0.8, zipf_theta=1.1,
        think_ns=50_000, burst_ops=512, idle_ns=SECOND,
    )
    workload.start()
    host.run_for(30 * SECOND)
    workload.stop()
    recorder.detach()
    count = save_trace(recorder.records, path)
    print(f"recorded {count} I/O records over 30 simulated seconds -> {path}")
    return count


def replay(path: Path, policy, label: str) -> None:
    records = load_trace(path)
    host = HostSystem(SsdConfig.small(blocks=512, pages_per_block=32), policy)
    working_set = host.user_pages // 2
    host.prefill(working_set)
    metrics = MetricsCollector(host, "trace")
    workload = TraceWorkload(host, metrics, Region(0, working_set), records)
    metrics.begin()
    workload.start()
    host.run_for(60 * SECOND)
    metrics.end()
    result = metrics.results()
    print(f"  {label:8s}: WAF={result.waf:.3f} "
          f"fgc_stalls={result.fgc_invocations:4d} "
          f"bgc_blocks={result.bgc_blocks:4d} "
          f"mean_latency={result.mean_latency_ns / 1e6:.3f} ms")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "workload.trace.csv"
        record_trace(path)
        print("\nreplaying the identical trace under two policies:")
        replay(path, lazy_bgc_policy(), "L-BGC")
        replay(path, JitGcPolicy(), "JIT-GC")
        print("\nSame bytes, same timing -- only the GC policy differs.")


if __name__ == "__main__":
    main()
