#!/usr/bin/env python3
"""Quickstart: build a simulated SSD + host, run JIT-GC under a YCSB-like
workload and print what happened.

This is the smallest complete tour of the public API:

1. configure a device (`SsdConfig`),
2. pick a GC policy (`JitGcPolicy` -- the paper's contribution),
3. assemble the host stack (`HostSystem`),
4. age the device and run a benchmark workload,
5. read the metrics.

Run:  python examples/quickstart.py
"""

from repro import JitGcPolicy, SsdConfig
from repro.host import HostSystem
from repro.metrics.collector import MetricsCollector
from repro.sim.simtime import SECOND
from repro.workloads import Region, YcsbWorkload


def main() -> None:
    # A small device: 512 blocks x 32 pages x 4 KiB = 64 MiB physical,
    # 7 % over-provisioning like the paper's Samsung SM843T.
    config = SsdConfig.small(blocks=512, pages_per_block=32)
    policy = JitGcPolicy()
    host = HostSystem(config, policy, seed=1)

    print(f"device: {config.geometry.total_blocks} blocks, "
          f"user capacity {config.user_bytes >> 20} MiB, "
          f"OP {config.op_bytes >> 20} MiB")

    # Age the device: fill the working set (half the user capacity) and
    # churn until the free space is down to the OP capacity -- the
    # steady state where GC policy matters.
    working_set = host.user_pages // 2
    host.prefill(working_set)
    print(f"prefilled {working_set} pages; free = {host.ftl.free_pages()} pages")

    # Run a YCSB-like workload for one simulated minute.
    metrics = MetricsCollector(host, "YCSB")
    workload = YcsbWorkload(host, metrics, Region(0, working_set))
    workload.start()
    host.run_for(10 * SECOND)          # warm-up
    metrics.begin()
    host.run_for(60 * SECOND)          # measurement window
    metrics.end()
    workload.stop()

    result = metrics.results()
    print(f"\n--- {result.workload} under {result.policy} ---")
    print(f"IOPS                : {result.iops:10.1f}")
    print(f"WAF                 : {result.waf:10.3f}")
    print(f"host pages written  : {result.host_pages_written:10d}")
    print(f"GC pages migrated   : {result.gc_pages_migrated:10d}")
    print(f"foreground GC stalls: {result.fgc_invocations:10d}")
    print(f"background GC blocks: {result.bgc_blocks:10d}")
    print(f"buffered write share: {result.buffered_fraction:10.1%}")
    if result.prediction_accuracy_pct is not None:
        print(f"prediction accuracy : {result.prediction_accuracy_pct:9.1f}%")
    print(f"SIP-filtered victims: {result.sip_filtered}/{result.sip_selections}")

    # The JIT-GC internals are inspectable too:
    decision = policy.last_decision
    if decision is not None:
        print(f"\nlast manager tick: Creq={decision.creq_bytes >> 10} KiB, "
              f"Cfree={decision.cfree_bytes >> 10} KiB, "
              f"reclaim={decision.reclaim_bytes >> 10} KiB")


if __name__ == "__main__":
    main()
