#!/usr/bin/env python3
"""Writing your own GC policy.

The policy interface is two methods: ``reclaim_demand_pages`` (how many
pages of free space do you want right now?) and optionally
``make_victim_selector`` / ``attach``.  This example builds a *hybrid*
policy -- a fixed floor like L-BGC plus a page-cache-informed top-up
like JIT-GC -- and races it against the built-ins.

Run:  python examples/custom_policy.py
"""

from repro.core.policies import GcPolicy, lazy_bgc_policy
from repro.core.buffered_predictor import BufferedWritePredictor
from repro.experiments import ScenarioSpec, format_table, run_scenario
from repro.ftl.victim import SipFilteredSelector


class HybridPolicy(GcPolicy):
    """A floor reserve plus the predicted buffered write-back on top.

    Demonstrates the extension points:

    * ``make_victim_selector`` -- install any victim-selection rule;
    * ``attach`` -- subscribe to flusher ticks / device completions;
    * ``reclaim_demand_pages`` -- the device consults this when idle.
    """

    name = "HYBRID"

    def __init__(self, floor_over_op: float = 0.5) -> None:
        self.floor_over_op = floor_over_op
        self._predicted_pages = 0

    def make_victim_selector(self):
        # Reuse the paper's SIP-aware selector.
        return SipFilteredSelector()

    def attach(self, sim, device, cache, flusher) -> None:
        super().attach(sim, device, cache, flusher)
        self.predictor = BufferedWritePredictor(
            cache, flusher.period_ns, flusher.tau_expire_ns
        )
        flusher.tick_hooks.append(self._tick)

    def _tick(self, now: int) -> None:
        prediction = self.predictor.predict(now)
        page = self.device.config.geometry.page_size
        self._predicted_pages = prediction.total_bytes() // page
        self.interface.set_sip_list(prediction.sip.as_set())
        self.interface.invoke_bgc()

    def reclaim_demand_pages(self, device) -> int:
        space = device.ftl.space
        floor = space.reserved_pages(self.floor_over_op)
        target = space.clamp_reserved_pages(
            floor + self._predicted_pages, device.ftl.used_pages()
        )
        return max(0, target - device.ftl.free_pages())


def main() -> None:
    spec = ScenarioSpec(
        workload="YCSB", blocks=512, pages_per_block=32, warmup_s=10, measure_s=45
    )
    rows = []
    for name, factory in (
        ("L-BGC", lazy_bgc_policy),
        ("HYBRID", HybridPolicy),
        ("JIT-GC", None),  # via the registry
    ):
        run_spec = spec.with_policy(name, factory) if factory else spec.with_policy("JIT-GC")
        metrics = run_scenario(run_spec)
        rows.append([metrics.policy, metrics.iops, metrics.waf,
                     metrics.fgc_invocations, metrics.bgc_blocks])
        print(f"  {metrics.policy} done")
    print()
    print(format_table(
        ["Policy", "IOPS", "WAF", "FGC", "BGC blocks"],
        rows,
        title="Custom policy vs built-ins (YCSB)",
    ))


if __name__ == "__main__":
    main()
