#!/usr/bin/env python3
"""Predictor anatomy: watch JIT-GC's two predictors and manager work.

Recreates the paper's worked examples live:

* Fig. 4 -- the buffered-write predictor scanning the page cache,
  including the age-resetting B -> B' update;
* Fig. 5 -- the direct-write CDH and its 80th-percentile read-out;
* Fig. 6 -- the manager's Creq / Tidle / Tgc decision.

Run:  python examples/predictor_anatomy.py
"""

from repro.core.buffered_predictor import BufferedWritePredictor
from repro.core.direct_predictor import DirectWritePredictor
from repro.core.manager import JitGcManager
from repro.oskernel.cache import PageCache
from repro.sim.simtime import SECOND

MB = 1_000_000
P = 5 * SECOND
TAU = 30 * SECOND


def fig4_buffered() -> None:
    print("=" * 64)
    print("Fig. 4: buffered-write demand from the page cache")
    print("=" * 64)
    cache = PageCache(page_size=MB, capacity_bytes=4096 * MB)
    predictor = BufferedWritePredictor(cache, P, TAU)

    def write(label, start, mb, at_s):
        for page in range(start, start + mb):
            cache.write_page(page, now=at_s * SECOND)
        print(f"  t={at_s:>2}s  {label}: {mb} MB written")

    write("A", 0, 20, 2)
    write("B", 100, 20, 3)
    for t in (5,):
        demands = predictor.predict(t * SECOND).demands_bytes
        print(f"  Dbuf({t}) = {[d // MB for d in demands]}  (paper: [0,0,0,0,0,40])")
    write("C", 200, 20, 7)
    write("B' (update of B -- resets its age)", 100, 20, 8)
    demands = predictor.predict(10 * SECOND).demands_bytes
    print(f"  Dbuf(10) = {[d // MB for d in demands]}  (paper: [0,0,0,0,20,40])")
    write("D", 300, 200, 17)
    prediction = predictor.predict(20 * SECOND)
    print(f"  Dbuf(20) = {[d // MB for d in prediction.demands_bytes]}"
          f"  (paper: [0,0,20,40,0,200])")
    print(f"  SIP list holds {len(prediction.sip)} soon-to-be-invalidated pages")


def fig5_direct() -> DirectWritePredictor:
    print()
    print("=" * 64)
    print("Fig. 5: direct-write CDH")
    print("=" * 64)
    predictor = DirectWritePredictor(P, TAU, percentile=0.8, bin_bytes=10 * MB)
    for index, amount in enumerate((10, 20, 20, 20, 80)):
        predictor.record_direct_bytes(amount * MB - 1, now=index * TAU)
    now = 5 * TAU
    print(f"  observations: 10, 20, 20, 20, 80 MB per tau_expire window")
    delta = predictor.delta_dir(now)  # also closes the final window
    print(f"  CDF per 10 MB bin: {[round(x, 2) for x in predictor.cdh.cdf()]}")
    print(f"  delta_dir at p80 = {delta // MB} MB  (paper: 20 MB)")
    print(f"  Ddir = {[d // MB for d in predictor.predict(now)]} MB per interval")
    return predictor


def fig6_manager() -> None:
    print()
    print("=" * 64)
    print("Fig. 6: the JIT-GC manager's decision rule")
    print("=" * 64)
    manager = JitGcManager(TAU)
    for label, dbuf, expected in (
        ("t=10 (Fig 6a)", [0, 0, 0, 0, 20 * MB, 40 * MB], "no BGC"),
        ("t=20 (Fig 6b)", [0, 0, 20 * MB, 40 * MB, 0, 200 * MB], "12.5 MB"),
    ):
        decision = manager.decide(
            dbuf_bytes=dbuf,
            ddir_bytes=[5 * MB] * 6,
            cfree_bytes=50 * MB,
            write_bw_bytes_per_sec=40 * MB,
            gc_bw_bytes_per_sec=10 * MB,
        )
        print(f"  {label}: Creq={decision.creq_bytes // MB} MB, "
              f"Tidle={decision.tidle_ns / SECOND:.2f}s, "
              f"Tgc={decision.tgc_ns / SECOND:.2f}s "
              f"-> Dreclaim={decision.reclaim_bytes / MB:.1f} MB (paper: {expected})")


def main() -> None:
    fig4_buffered()
    fig5_direct()
    fig6_manager()


if __name__ == "__main__":
    main()
